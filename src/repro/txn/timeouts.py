"""Adaptive patience and bounded retry for the commit protocol.

The paper uses one word — "promptly" — for every patience in the
protocol, and the reproduction historically pinned it to fixed
constants (``compute_timeout``/``wait_timeout``/``ready_timeout``).
Fixed constants are exactly wrong under *gray* failures: when the
network is slow rather than dead, a fixed timeout fires spuriously,
installing polyvalues for transactions that were milliseconds from
completing (section 6 warns that transient hiccups should not create
polyvalues).

This module provides the resilience primitives:

* :class:`RttEstimator` — the Jacobson/Karels estimator TCP uses:
  exponentially weighted moving averages of the round-trip time
  (``srtt``) and its deviation (``rttvar``), giving a retransmission
  timeout of ``srtt + k * rttvar``;
* :class:`TimeoutPolicy` — configuration selecting ``fixed`` mode (the
  default: exact historical behaviour, bit-for-bit replayable) or
  ``adaptive`` mode (per-peer estimators feed every patience);
* :class:`Patience` — one site's view: a per-peer estimator bank with
  the policy applied, falling back to the fixed constants until the
  first sample arrives;
* :class:`RetryPolicy` — bounded retransmission: exponential
  per-destination backoff with *deterministic* jitter (a CRC of the
  destination key, not an RNG draw, so replays are exact) and a
  down-peer suppression window.

Everything here is pure computation over observed samples — no
simulator access, no RNG — which is what keeps adaptive mode
deterministic for a fixed schedule.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.errors import SimulationError


class RttEstimator:
    """Jacobson/Karels round-trip estimation (RFC 6298 shape).

    ``observe(sample)`` folds one measured interval in; :meth:`rto`
    answers ``srtt + k * rttvar``.  The first sample initialises
    ``srtt = sample`` and ``rttvar = sample / 2`` exactly as TCP does.
    """

    __slots__ = ("srtt", "rttvar", "samples", "_alpha", "_beta")

    def __init__(self, *, alpha: float = 0.125, beta: float = 0.25) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.samples: int = 0
        self._alpha = alpha
        self._beta = beta

    def observe(self, sample: float) -> None:
        """Fold one measured interval (simulated seconds) into the EWMA."""
        if sample < 0:
            raise SimulationError(f"rtt sample must be >= 0, got {sample}")
        self.samples += 1
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
            return
        deviation = abs(sample - self.srtt)
        self.rttvar = (1.0 - self._beta) * self.rttvar + self._beta * deviation
        self.srtt = (1.0 - self._alpha) * self.srtt + self._alpha * sample

    def rto(self, k: float = 4.0) -> Optional[float]:
        """``srtt + k * rttvar`` — None until the first sample."""
        if self.srtt is None:
            return None
        return self.srtt + k * self.rttvar


@dataclass(frozen=True)
class TimeoutPolicy:
    """How a site turns observed round trips into protocol patience.

    ``mode="fixed"`` (default) reproduces the historical behaviour: the
    :class:`~repro.txn.runtime.ProtocolConfig` constants are used
    verbatim and no estimator state affects the run — existing seeded
    schedules replay bit-for-bit.  ``mode="adaptive"`` feeds a per-peer
    :class:`RttEstimator` into every patience: the timeout for a peer
    is ``grace + srtt + k * rttvar``, clamped to
    ``[min_timeout, max_timeout]``, falling back to the fixed constant
    until that peer has produced a sample.
    """

    mode: str = "fixed"
    #: EWMA gains (TCP's 1/8 and 1/4).
    alpha: float = 0.125
    beta: float = 0.25
    #: Deviation multiplier in the RTO.
    k: float = 4.0
    #: Constant slack added on top of the estimator (processing time at
    #: the far end is not part of a pure network RTT).
    grace: float = 0.05
    #: Clamp: never time out faster than this (keeps detection sane on
    #: all-local topologies where srtt is microscopic) ...
    min_timeout: float = 0.05
    #: ... nor slower than this (bounds detection latency under extreme
    #: gray noise; an actually-dead peer is still detected).
    max_timeout: float = 30.0

    MODES = ("fixed", "adaptive")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise SimulationError(f"unknown timeout mode {self.mode!r}")
        if not 0.0 < self.alpha <= 1.0 or not 0.0 < self.beta <= 1.0:
            raise SimulationError("EWMA gains must be in (0, 1]")
        if self.min_timeout <= 0 or self.max_timeout < self.min_timeout:
            raise SimulationError(
                f"need 0 < min_timeout <= max_timeout, got "
                f"[{self.min_timeout}, {self.max_timeout}]"
            )

    @property
    def adaptive(self) -> bool:
        return self.mode == "adaptive"


class Patience:
    """One site's per-peer patience: estimators + policy + fallbacks.

    The coordinator observes true per-peer round trips (read request →
    read reply, stage request → ready); a participant observes the
    *phase intervals* its patience must actually cover (read reply sent
    → stage request arrived, ready sent → complete/abort arrived).
    Both feed the same estimator bank through :meth:`observe`.
    """

    #: Cap on consecutive-timeout doublings (2^6 = 64x; the max_timeout
    #: clamp usually engages first).
    MAX_PENALTY = 6

    def __init__(self, policy: TimeoutPolicy) -> None:
        self.policy = policy
        self._estimators: Dict[str, RttEstimator] = {}
        self._penalty: Dict[str, int] = {}

    def observe(self, peer: str, sample: float) -> None:
        """Record one measured interval against *peer*.

        In fixed mode samples are still accepted (the estimator bank is
        cheap and lets tooling inspect what adaptive mode *would* do)
        but never influence any timeout.  A genuine sample clears any
        timeout penalty: the peer answered, so the estimate is live
        again.
        """
        self._penalty.pop(peer, None)
        estimator = self._estimators.get(peer)
        if estimator is None:
            estimator = self._estimators[peer] = RttEstimator(
                alpha=self.policy.alpha, beta=self.policy.beta
            )
        estimator.observe(sample)

    def penalize(self, peer: str) -> None:
        """Back off after a timeout against *peer* (Karn's algorithm).

        A fired timeout censors the very sample that would have taught
        the estimator the new, slower round-trip — without this, a
        latency step up (a gray degradation) locks the estimator at the
        old fast estimate and every subsequent exchange times out too.
        Each consecutive timeout doubles the peer's effective timeout
        (up to 2^:data:`MAX_PENALTY`); the next accepted sample resets
        it.
        """
        current = self._penalty.get(peer, 0)
        if current < self.MAX_PENALTY:
            self._penalty[peer] = current + 1

    def estimator(self, peer: str) -> Optional[RttEstimator]:
        """The estimator for *peer*, if any samples were recorded."""
        return self._estimators.get(peer)

    def timeout_for(self, peer: str, fallback: float) -> float:
        """The patience to use when waiting on *peer*.

        Fixed mode — or an unsampled peer — answers *fallback*
        unchanged; adaptive mode answers the clamped RTO.
        """
        if not self.policy.adaptive:
            return fallback
        estimator = self._estimators.get(peer)
        rto = estimator.rto(self.policy.k) if estimator else None
        if rto is None:
            return fallback
        value = self.policy.grace + rto
        value *= 1 << self._penalty.get(peer, 0)
        return min(self.policy.max_timeout, max(self.policy.min_timeout, value))

    def timeout_over(self, peers: Iterable[str], fallback: float) -> float:
        """The patience to use when waiting on *all* of *peers*.

        The slowest peer dominates: the result is the maximum per-peer
        timeout, with *fallback* substituting for any unsampled peer
        (so early rounds behave exactly like fixed mode).
        """
        if not self.policy.adaptive:
            return fallback
        best = 0.0
        for peer in peers:
            best = max(best, self.timeout_for(peer, fallback))
        return best or fallback


def deterministic_jitter_fraction(key: str, attempt: int) -> float:
    """A stable pseudo-random fraction in ``[0, 1)`` for (*key*, *attempt*).

    CRC-derived, not RNG-derived: retransmission jitter must not
    consume the simulation's seeded stream (replays would diverge), and
    must differ across destinations so synchronized retry storms decor-
    relate.
    """
    digest = zlib.crc32(f"{key}#{attempt}".encode("utf-8"))
    return (digest & 0xFFFFFFFF) / 4294967296.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission: exponential backoff + peer suppression.

    The outcome-maintenance loop owes notifications and queries to
    peers that may be down for a long time.  Flat-interval resends are
    O(outage / interval) messages per owed entry; this policy makes a
    long outage cost O(log(outage)) instead:

    * per-entry delay ``min(cap, base * factor^(attempt-1))``, spread
      by deterministic jitter (``* (1 + jitter * frac)``);
    * after ``suppression_threshold`` consecutive unacknowledged sends
      to one destination, the destination is *suppressed* — new entries
      for it start at the suppression window rather than probing from
      the base again;
    * any inbound message from the destination resets suppression and
      re-arms owed entries at the base delay (a recovered peer is
      caught up within roughly one maintenance period).

    ``backoff_base=None`` uses the config's ``outcome_query_interval``,
    so fixed-policy runs with default settings retransmit first at
    exactly the historical time.
    """

    backoff_base: Optional[float] = None
    backoff_factor: float = 2.0
    backoff_cap: float = 8.0
    jitter: float = 0.1
    suppression_threshold: int = 3
    suppression_window: float = 4.0

    def __post_init__(self) -> None:
        if self.backoff_factor < 1.0:
            raise SimulationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_cap <= 0:
            raise SimulationError(
                f"backoff_cap must be > 0, got {self.backoff_cap}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SimulationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.suppression_threshold < 1:
            raise SimulationError(
                "suppression_threshold must be >= 1, got "
                f"{self.suppression_threshold}"
            )

    def base(self, default: float) -> float:
        """The first-retry delay (*default* when ``backoff_base`` unset)."""
        return self.backoff_base if self.backoff_base is not None else default

    def delay(self, attempt: int, *, default_base: float, key: str = "") -> float:
        """Delay before retry number *attempt* (1-based) for entry *key*."""
        if attempt < 1:
            raise SimulationError(f"attempt must be >= 1, got {attempt}")
        base = self.base(default_base)
        raw = min(self.backoff_cap, base * self.backoff_factor ** (attempt - 1))
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 + self.jitter * deterministic_jitter_fraction(key, attempt))
