"""Protocol tracing: capture and render the message flow of the protocol.

Attach a :class:`ProtocolTracer` to a system and every protocol message
(sent, delivered or dropped) is recorded with its timestamp.  The trace
can be filtered by transaction and rendered as a text message-sequence
chart — the shape a distributed-systems reader expects when debugging a
commit protocol:

    time(ms)  site-0           site-1           site-2
       10.0   |---ReadRequest--->|               |
       20.0   |<----ReadReply----|               |
       ...

This is a developer-facing tool: the tests use it to assert on exact
message sequences, the ``protocol_trace`` example uses it to *show* the
in-doubt window, and it costs nothing when not attached.

The tracer is one *view* over the system's structured event bus
(:mod:`repro.obs.events`): it subscribes to the ``msg.*`` family and
folds each event back into the flat :class:`TraceRecord` shape the
rendering and the tests consume.  Other consumers (the span tracer, the
JSON-lines exporter) see exactly the same events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.net.message import SiteId
from repro.obs.events import ObsEvent
from repro.txn import protocol
from repro.txn.system import DistributedSystem


@dataclass(frozen=True)
class TraceRecord:
    """One transport event: a message sent, delivered or dropped."""

    time: float
    event: str  # "send", "deliver", "drop:site-down", ...
    sender: SiteId
    recipient: SiteId
    message: object

    @property
    def message_kind(self) -> str:
        """The protocol message class name (e.g. ``"Ready"``)."""
        return type(self.message).__name__

    @property
    def txn(self) -> Optional[str]:
        """The transaction the message concerns, if it is protocol traffic."""
        return getattr(self.message, "txn", None)

    def describe(self) -> str:
        """A one-line human-readable rendering."""
        detail = ""
        if isinstance(self.message, protocol.StageRequest):
            detail = f" writes={sorted(self.message.writes)}"
        elif isinstance(self.message, protocol.ReadRequest):
            detail = f" items={sorted(self.message.items)}"
        elif isinstance(self.message, protocol.OutcomeNotify):
            detail = f" committed={self.message.committed}"
        return (
            f"{self.time * 1000:9.1f}ms {self.event:<16} "
            f"{self.sender} -> {self.recipient}: "
            f"{self.message_kind}({self.txn}){detail}"
        )


class ProtocolTracer:
    """Records every transport event of a system's network.

    Implemented as a prefix subscription on the system's event bus: the
    network emits one ``msg.send``/``msg.deliver``/``msg.drop`` event
    per transport action, carrying the exact legacy event string in the
    ``transport`` attr and the live payload in ``message``.
    """

    def __init__(self, system: DistributedSystem) -> None:
        self.records: List[TraceRecord] = []
        self._bus = system.bus
        self._bus.subscribe(self._observe, prefix="msg.")

    def _observe(self, event: ObsEvent) -> None:
        attrs = event.attrs
        self.records.append(
            TraceRecord(
                time=event.time,
                event=attrs["transport"],
                sender=attrs["sender"],
                recipient=attrs["recipient"],
                message=attrs["message"],
            )
        )

    def detach(self) -> None:
        """Stop tracing (the captured records stay available)."""
        self._bus.unsubscribe(self._observe)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def for_txn(self, txn: str) -> List[TraceRecord]:
        """All records concerning one transaction, in time order."""
        return [record for record in self.records if record.txn == txn]

    def deliveries(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """Delivered messages, optionally of one protocol message kind."""
        return [
            record
            for record in self.records
            if record.event == "deliver"
            and (kind is None or record.message_kind == kind)
        ]

    def drops(self) -> List[TraceRecord]:
        """Every message that failed to reach its recipient."""
        return [
            record for record in self.records if record.event.startswith("drop")
        ]

    def message_kinds(self) -> Dict[str, int]:
        """Delivered-message histogram by protocol kind."""
        histogram: Dict[str, int] = {}
        for record in self.deliveries():
            histogram[record.message_kind] = (
                histogram.get(record.message_kind, 0) + 1
            )
        return histogram

    def clear(self) -> None:
        """Drop all recorded events."""
        self.records.clear()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def sequence_chart(
        self,
        txn: Optional[str] = None,
        *,
        sites: Optional[Sequence[SiteId]] = None,
        include_drops: bool = True,
    ) -> str:
        """Render a text message-sequence chart.

        Only *delivery* and (optionally) *drop* events are drawn — a
        send immediately followed by its delivery would double every
        arrow.  Messages between sites not in *sites* are skipped.
        """
        records = self.for_txn(txn) if txn else list(self.records)
        records = [
            record
            for record in records
            if record.event == "deliver"
            or (include_drops and record.event.startswith("drop"))
        ]
        if sites is None:
            involved: List[SiteId] = []
            for record in records:
                for site in (record.sender, record.recipient):
                    if site not in involved:
                        involved.append(site)
            sites = sorted(involved)
        if not records or not sites:
            return "(no traffic)"

        column: Dict[SiteId, int] = {site: index for index, site in enumerate(sites)}
        lane_width = max(18, max(len(s) for s in sites) + 6)
        header = f"{'time(ms)':>10}  " + "".join(
            f"{site:<{lane_width}}" for site in sites
        )
        lines = [header]
        for record in sorted(records, key=lambda r: r.time):
            if record.sender not in column or record.recipient not in column:
                continue
            a = column[record.sender]
            b = column[record.recipient]
            left, right = min(a, b), max(a, b)
            label = record.message_kind
            if record.event.startswith("drop"):
                label = f"X {label} ({record.event[5:]})"
            span = lane_width * (right - left)
            if span < len(label) + 4:
                span = len(label) + 4
            body = label.center(span - 2, "-")
            arrow = ("<" + body + "|") if b < a else ("|" + body + ">")
            lines.append(
                f"{record.time * 1000:>10.1f}  "
                + " " * (lane_width * left)
                + arrow
            )
        return "\n".join(lines)

    def timeline(self, txn: Optional[str] = None) -> str:
        """One :meth:`TraceRecord.describe` line per event."""
        records = self.for_txn(txn) if txn else self.records
        return "\n".join(record.describe() for record in records)
