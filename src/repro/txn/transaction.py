"""Transaction specifications and client-visible handles.

A :class:`Transaction` is "a mapping from one database state to another
database state" (section 3): here, a deterministic body function over a
declared set of items, executed through the polytransaction engine so it
can run against polyvalued inputs.

The declared item set serves the same purpose as the pre-analysis in
SDD-1-style systems: it tells the coordinator which sites are involved
*before* execution, so the compute phase can gather reads and ship
writes.  The body may read any declared item (or skip some) and may
write any declared item; reading an undeclared item is an error.

A :class:`TransactionHandle` is what a client holds after submitting: it
resolves to COMMITTED (with the externally visible outputs, which may be
polyvalues — section 3.4) or ABORTED, and records timing for the
benchmarks.

Transaction identifiers embed their coordinator site
(``"T42@site-0"``): any site holding a polyvalue that depends on an
in-doubt transaction can therefore derive whom to query for the outcome
without a separate directory — the simplest realisation of the paper's
requirement that outcomes be discoverable after recovery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.errors import ProtocolError
from repro.core.polytransaction import TxnBody
from repro.net.message import SiteId

TxnId = str
ItemId = str


def make_txn_id(sequence: int, coordinator: SiteId) -> TxnId:
    """Mint the identifier for the *sequence*-th transaction at *coordinator*."""
    return f"T{sequence}@{coordinator}"


def coordinator_of(txn: TxnId) -> SiteId:
    """Extract the coordinator site embedded in a transaction identifier."""
    _, separator, site = txn.partition("@")
    if not separator or not site:
        raise ProtocolError(f"malformed transaction id {txn!r}")
    return site


@dataclass(frozen=True)
class Transaction:
    """A client-submitted transaction: a body over a declared item set.

    Parameters
    ----------
    body:
        Deterministic function of its reads (see
        :mod:`repro.core.polytransaction`).  It receives a
        :class:`~repro.core.polytransaction.PolyContext`.
    items:
        Every item the body may read or write.  The involved sites are
        exactly the home sites of these items.
    label:
        Optional human-readable tag used in logs and metrics.
    """

    body: TxnBody
    items: Tuple[ItemId, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.items:
            raise ProtocolError("a transaction must declare at least one item")
        if len(set(self.items)) != len(self.items):
            raise ProtocolError(f"duplicate items in declaration: {self.items}")


class TxnStatus(enum.Enum):
    """Client-visible lifecycle of a submitted transaction."""

    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TransactionHandle:
    """What a client holds after :meth:`DistributedSystem.submit`.

    ``outputs`` (valid only when COMMITTED) are the externally visible
    outputs of section 3.4 — they may be polyvalues when the transaction
    ran as a polytransaction and its outputs genuinely depended on
    in-doubt state.  ``abort_reason`` explains ABORTED outcomes.
    """

    txn: TxnId
    transaction: Transaction
    submitted_at: float
    status: TxnStatus = TxnStatus.PENDING
    decided_at: Optional[float] = None
    outputs: Dict[str, Any] = field(default_factory=dict)
    abort_reason: str = ""
    #: True when the transaction read at least one polyvalued item
    #: (i.e. it executed as a polytransaction).
    was_polytransaction: bool = False
    #: True when the decision came only after a failure delayed the
    #: protocol (some participant installed polyvalues meanwhile).
    was_delayed_by_failure: bool = False

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-decision time in simulated seconds (None if pending)."""
        if self.decided_at is None:
            return None
        return self.decided_at - self.submitted_at

    def mark_committed(self, at: float, outputs: Mapping[str, Any]) -> None:
        """Transition to COMMITTED (idempotent; re-decision is a protocol bug)."""
        self._mark(TxnStatus.COMMITTED, at)
        self.outputs = dict(outputs)

    def mark_aborted(self, at: float, reason: str = "") -> None:
        """Transition to ABORTED."""
        self._mark(TxnStatus.ABORTED, at)
        self.abort_reason = reason

    def _mark(self, status: TxnStatus, at: float) -> None:
        if self.status is not TxnStatus.PENDING:
            if self.status is status:
                return
            raise ProtocolError(
                f"transaction {self.txn} decided twice: "
                f"{self.status.value} then {status.value}"
            )
        self.status = status
        self.decided_at = at

    def __repr__(self) -> str:
        return (
            f"TransactionHandle({self.txn}, {self.status.value}, "
            f"label={self.transaction.label!r})"
        )
