"""Workloads: the §4.2 random-update stream and the §5 applications."""

from repro.workloads.banking import (
    BankingWorkload,
    account_items,
    authorize,
    balance_inquiry,
    deposit,
    funds_conserved,
    total_funds_possibilities,
    transfer,
)
from repro.workloads.generator import (
    RandomUpdateWorkload,
    WorkloadConfig,
    make_item_ids,
    make_update_transaction,
)
from repro.workloads.inventory import (
    InventoryWorkload,
    order,
    rebalance,
    reorder_check,
    restock,
    stock_item,
    stock_items,
    stock_never_negative,
)
from repro.workloads.runner import ExperimentRunner, RunReport, serial_replay
from repro.workloads.reservations import (
    ReservationsWorkload,
    cancel,
    flight_items,
    might_be_full,
    never_oversold,
    reserve,
    seats_remaining,
)

__all__ = [
    "BankingWorkload",
    "ExperimentRunner",
    "InventoryWorkload",
    "RandomUpdateWorkload",
    "ReservationsWorkload",
    "RunReport",
    "WorkloadConfig",
    "account_items",
    "authorize",
    "balance_inquiry",
    "cancel",
    "deposit",
    "flight_items",
    "funds_conserved",
    "make_item_ids",
    "make_update_transaction",
    "might_be_full",
    "never_oversold",
    "order",
    "rebalance",
    "reorder_check",
    "reserve",
    "restock",
    "seats_remaining",
    "serial_replay",
    "stock_item",
    "stock_items",
    "stock_never_negative",
    "total_funds_possibilities",
    "transfer",
]
