"""Electronic funds transfer — the paper's flagship application (§5).

    "The important transactions in such a system are those that
    authorize transfers of 'real' money or goods ... Such transactions
    depend very loosely on the state of the database in that the
    important effect (distribution of funds or goods) depends only on
    the fact that the relevant accounts contain enough funds, not on
    exactly how much."

This module provides the account database and the three transaction
kinds the quote implies:

* :func:`transfer` — move funds between two accounts (the atomic
  distributed update that failures can interrupt);
* :func:`authorize` — the "important transaction": approve a purchase
  iff the account *definitely* has enough funds, which usually stays a
  simple yes even when the balance is a polyvalue;
* :func:`deposit` — a single-item credit.

Plus an invariant helper: total funds are conserved under every
possible resolution of the outstanding uncertainty — the property the
integration tests check after failure storms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.core.polyvalue import (
    Value,
    combine,
    definitely,
    possible_values,
)
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction

AccountId = str


def account_items(count: int, prefix: str = "acct") -> List[AccountId]:
    """Account item identifiers ``acct-000`` ..."""
    width = max(3, len(str(count - 1)))
    return [f"{prefix}-{index:0{width}d}" for index in range(count)]


def transfer(source: AccountId, target: AccountId, amount: int) -> Transaction:
    """Move *amount* from *source* to *target* if funds suffice.

    Reads partition on uncertainty (the transfer's outcome may honestly
    depend on which balance is correct); the ``transferred`` output
    reports what happened and collapses to a simple value whenever the
    decision is the same under every alternative.
    """
    if amount <= 0:
        raise ValueError(f"transfer amount must be positive, got {amount}")

    def body(ctx):
        balance = ctx.read(source)
        if balance >= amount:
            ctx.write(source, balance - amount)
            ctx.write(target, ctx.read(target) + amount)
            ctx.output("transferred", True)
        else:
            ctx.output("transferred", False)

    return Transaction(
        body=body,
        items=(source, target),
        label=f"transfer:{source}->{target}:{amount}",
    )


def authorize(account: AccountId, amount: int) -> Transaction:
    """Authorize a purchase iff the account definitely covers it.

    This is the section 5 pattern: the decision uses
    :func:`~repro.core.polyvalue.definitely` over the raw (possibly
    poly) balance, so an uncertain balance of, say, {<100,T>, <150,~T>}
    still yields a certain "yes" for any amount ≤ 100.  The hold is
    debited through the lifted :func:`~repro.core.polyvalue.combine`,
    propagating uncertainty only into the balance, never the answer.
    """
    if amount <= 0:
        raise ValueError(f"authorization amount must be positive, got {amount}")

    def body(ctx):
        balance = ctx.read_raw(account)
        approved = definitely(lambda funds: funds >= amount, balance)
        ctx.output("approved", approved)
        if approved:
            ctx.write(account, combine(lambda funds: funds - amount, balance))

    return Transaction(
        body=body, items=(account,), label=f"authorize:{account}:{amount}"
    )


def deposit(account: AccountId, amount: int) -> Transaction:
    """Credit *amount* to *account* (value-independent of other items)."""
    if amount <= 0:
        raise ValueError(f"deposit amount must be positive, got {amount}")

    def body(ctx):
        ctx.write(account, ctx.read(account) + amount)

    return Transaction(
        body=body, items=(account,), label=f"deposit:{account}:{amount}"
    )


def balance_inquiry(account: AccountId) -> Transaction:
    """Read-only inquiry; the output may honestly be a polyvalue (§3.4)."""

    def body(ctx):
        ctx.output("balance", ctx.read_raw(account))

    return Transaction(body=body, items=(account,), label=f"inquiry:{account}")


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------


def total_funds_possibilities(state: Mapping[AccountId, Value]) -> List[int]:
    """Every possible total over all resolution outcomes — conservatively.

    Computed with the lifted sum, so correlated uncertainty (two
    accounts depending on the *same* in-doubt transfer) is handled
    exactly: the impossible cross-combinations are pruned by the
    condition algebra.
    """
    total = combine(lambda *values: sum(values), *state.values())
    return sorted(possible_values(total))


def funds_conserved(
    state: Mapping[AccountId, Value], expected_total: int
) -> bool:
    """True iff every possible resolution preserves *expected_total*.

    After any mix of commits, aborts and in-doubt transfers, a correct
    system satisfies this: transfers move money, never create it.
    """
    return total_funds_possibilities(state) == [expected_total]


@dataclass
class BankingWorkload:
    """A random mix of transfers, authorizations and deposits.

    A thin, seedable driver used by the examples and the application
    ablation bench.  Amount ranges are small relative to initial
    balances so most authorizations succeed (the regime section 5
    targets).
    """

    system: DistributedSystem
    accounts: Sequence[AccountId]
    seed: int = 0
    transfer_weight: float = 0.5
    authorize_weight: float = 0.3
    max_amount: int = 20

    def __post_init__(self) -> None:
        from repro.sim.rand import Rng

        self._rng = Rng(self.seed)
        self.handles = []
        self._arrivals = None

    def stream(self, rate: float):
        """Submit operations in a Poisson stream at *rate* per second."""
        from repro.workloads.generator import ArrivalProcess

        self._arrivals = ArrivalProcess(
            self.system.sim, rate, self.submit_one, self._rng.fork("arrivals")
        )
        return self._arrivals

    def stop_stream(self) -> None:
        """Stop a stream started with :meth:`stream`."""
        if self._arrivals is not None:
            self._arrivals.stop()

    def submit_one(self):
        """Submit one randomly chosen operation; returns its handle."""
        roll = self._rng.uniform(0.0, 1.0)
        amount = self._rng.randint(1, self.max_amount)
        if roll < self.transfer_weight:
            source, target = self._rng.sample(list(self.accounts), 2)
            transaction = transfer(source, target, amount)
        elif roll < self.transfer_weight + self.authorize_weight:
            account = self._rng.choice(list(self.accounts))
            transaction = authorize(account, amount)
        else:
            account = self._rng.choice(list(self.accounts))
            transaction = deposit(account, amount)
        handle = self.system.submit(transaction)
        self.handles.append(handle)
        return handle
