"""Random update workloads for the full-system simulator.

This reproduces the section 4.2 workload shape on the *real* system
(network, 2PC, polyvalue installation) rather than the abstract tag-set
model: transactions arrive in a Poisson stream at rate U; each updates
one uniformly chosen item with a value computed from ``d`` dependency
items (``d`` exponential with mean D) and, with probability ``1-Y``,
the item's previous value.

Item selection can be skewed (``hot_fraction``/``hot_weight``) to model
the paper's remark that non-uniform access "has the effect of reducing
the effective size of the database".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.errors import SimulationError
from repro.sim.rand import Rng
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TransactionHandle

ItemId = str


def make_item_ids(count: int, prefix: str = "item") -> List[ItemId]:
    """Zero-padded item identifiers: ``item-0000`` ... (stable sort order)."""
    width = max(4, len(str(count - 1)))
    return [f"{prefix}-{index:0{width}d}" for index in range(count)]


def make_update_transaction(
    target: ItemId,
    dependencies: Sequence[ItemId],
    *,
    include_previous: bool,
    salt: int,
    label: str = "",
) -> Transaction:
    """A deterministic random-update transaction.

    The new value is an integer mix of the dependency values (and the
    previous value when *include_previous*), so uncertainty in any input
    genuinely propagates to the output — matching the analysis's ``D``
    and ``Y`` semantics on the real datapath.
    """
    dependency_list = tuple(dict.fromkeys(dependencies))
    declared = tuple(
        dict.fromkeys((target,) + dependency_list)
    )

    def body(ctx):
        mixed = salt
        for item in dependency_list:
            mixed = (mixed * 31 + int(ctx.read(item))) % 1_000_000_007
        if include_previous:
            mixed = (mixed * 31 + int(ctx.read(target))) % 1_000_000_007
        ctx.write(target, mixed)

    return Transaction(body=body, items=declared, label=label or f"update:{target}")


class ArrivalProcess:
    """A Poisson arrival stream invoking an action (submit-one callbacks).

    Shared by the application workloads' ``stream``/``stop_stream``:
    arrivals are exponential with mean ``1/rate``, drawn from their own
    RNG stream so starting a stream does not perturb the workload's
    operation mix.
    """

    def __init__(self, sim, rate: float, action, rng: Rng) -> None:
        if rate <= 0:
            raise SimulationError(f"arrival rate must be positive, got {rate}")
        self._sim = sim
        self._rate = rate
        self._action = action
        self._rng = rng
        self._running = True
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = self._rng.exponential(1.0 / self._rate)
        self._sim.schedule(delay, self._fire, label="arrival")

    def _fire(self) -> None:
        if not self._running:
            return
        self._action()
        self._schedule_next()

    def stop(self) -> None:
        """Stop after the currently scheduled arrival."""
        self._running = False


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape parameters mirroring the paper's U, D, Y (F and R come from
    the failure injector, not the workload)."""

    update_rate: float  # U: transactions per simulated second
    dependency_mean: float = 1.0  # D
    update_independence: float = 0.0  # Y
    #: Optional hot-spot skew: this fraction of items receives
    #: ``hot_weight`` of the traffic (0 disables).
    hot_fraction: float = 0.0
    hot_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.update_rate <= 0:
            raise SimulationError(
                f"update_rate must be positive, got {self.update_rate}"
            )
        if self.dependency_mean < 0:
            raise SimulationError(
                f"dependency_mean must be >= 0, got {self.dependency_mean}"
            )
        if not 0.0 <= self.update_independence <= 1.0:
            raise SimulationError(
                f"update_independence must be in [0,1], got "
                f"{self.update_independence}"
            )
        if not 0.0 <= self.hot_fraction < 1.0 or not 0.0 <= self.hot_weight < 1.0:
            raise SimulationError("hot_fraction/hot_weight must be in [0,1)")
        if (self.hot_fraction == 0.0) != (self.hot_weight == 0.0):
            raise SimulationError(
                "hot_fraction and hot_weight must be set together"
            )


class RandomUpdateWorkload:
    """Drives a Poisson stream of random updates into a system.

    Call :meth:`start` once; arrivals self-schedule until
    :meth:`stop`.  Handles of all submitted transactions are kept for
    post-run assertions.
    """

    def __init__(
        self,
        system: DistributedSystem,
        config: WorkloadConfig,
        *,
        seed: int = 0,
        items: Optional[Sequence[ItemId]] = None,
    ) -> None:
        self._system = system
        self._config = config
        self._rng = Rng(seed)
        self._items: List[ItemId] = (
            list(items) if items is not None else sorted(system.catalog.all_items())
        )
        if not self._items:
            raise SimulationError("workload needs at least one item")
        self.handles: List[TransactionHandle] = []
        self._running = False
        self._salt = 0

    def start(self) -> None:
        """Begin the arrival stream."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop after the currently scheduled arrival."""
        self._running = False

    def _schedule_next(self) -> None:
        delay = self._rng.exponential(1.0 / self._config.update_rate)
        self._system.sim.schedule(delay, self._arrive, label="workload-arrival")

    def _arrive(self) -> None:
        if not self._running:
            return
        self._submit_one()
        self._schedule_next()

    def _pick_item(self) -> ItemId:
        config = self._config
        if config.hot_fraction > 0 and self._rng.bernoulli(config.hot_weight):
            hot_count = max(1, int(len(self._items) * config.hot_fraction))
            return self._items[self._rng.randint(0, hot_count - 1)]
        return self._rng.choice(self._items)

    def _submit_one(self) -> TransactionHandle:
        config = self._config
        target = self._pick_item()
        if config.dependency_mean > 0:
            count = int(round(self._rng.exponential(config.dependency_mean)))
        else:
            count = 0
        dependencies = [self._pick_item() for _ in range(count)]
        include_previous = not self._rng.bernoulli(config.update_independence)
        self._salt += 1
        transaction = make_update_transaction(
            target,
            dependencies,
            include_previous=include_previous,
            salt=self._salt,
        )
        handle = self._system.submit(transaction)
        self.handles.append(handle)
        return handle
