"""Inventory / process control — the paper's third application family (§5).

    "Such applications as inventory or process control also seem ideal
    candidates for the polyvalue mechanism.  Again, real time operation
    is important; however, the exact values of the items in the
    database are frequently not needed for the important real time
    effects."

The model: warehouses hold per-product stock levels (one item per
(warehouse, product) pair).  Orders consume stock at one warehouse;
restocks replenish; cross-warehouse rebalancing is the multi-site
atomic update that failures can interrupt.  The "important real time
effect" is the reorder signal: flag a product when its total stock
*might* have fallen below the reorder point — a modal decision
(:func:`~repro.core.polyvalue.possibly`) that works fine on polyvalues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.core.polyvalue import Value, combine, definitely, possibly
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction

ItemId = str


def stock_item(warehouse: str, product: str) -> ItemId:
    """The database item holding *product*'s stock at *warehouse*."""
    return f"stock:{warehouse}:{product}"


def stock_items(
    warehouses: Sequence[str], products: Sequence[str]
) -> List[ItemId]:
    """All (warehouse, product) stock items."""
    return [
        stock_item(warehouse, product)
        for warehouse in warehouses
        for product in products
    ]


def order(warehouse: str, product: str, quantity: int) -> Transaction:
    """Ship *quantity* units from *warehouse* if stock suffices."""
    if quantity <= 0:
        raise ValueError(f"quantity must be positive, got {quantity}")
    item = stock_item(warehouse, product)

    def body(ctx):
        stock = ctx.read(item)
        if stock >= quantity:
            ctx.write(item, stock - quantity)
            ctx.output("shipped", True)
        else:
            ctx.output("shipped", False)

    return Transaction(
        body=body, items=(item,), label=f"order:{warehouse}:{product}:{quantity}"
    )


def restock(warehouse: str, product: str, quantity: int) -> Transaction:
    """Add *quantity* units of *product* at *warehouse*."""
    if quantity <= 0:
        raise ValueError(f"quantity must be positive, got {quantity}")
    item = stock_item(warehouse, product)

    def body(ctx):
        ctx.write(item, ctx.read(item) + quantity)

    return Transaction(
        body=body,
        items=(item,),
        label=f"restock:{warehouse}:{product}:{quantity}",
    )


def rebalance(
    source_warehouse: str,
    target_warehouse: str,
    product: str,
    quantity: int,
) -> Transaction:
    """Move stock between warehouses — the multi-site atomic update."""
    if quantity <= 0:
        raise ValueError(f"quantity must be positive, got {quantity}")
    source = stock_item(source_warehouse, product)
    target = stock_item(target_warehouse, product)

    def body(ctx):
        available = ctx.read(source)
        if available >= quantity:
            ctx.write(source, available - quantity)
            ctx.write(target, ctx.read(target) + quantity)
            ctx.output("moved", True)
        else:
            ctx.output("moved", False)

    return Transaction(
        body=body,
        items=(source, target),
        label=f"rebalance:{source_warehouse}->{target_warehouse}:{product}",
    )


def reorder_check(
    warehouses: Sequence[str], product: str, reorder_point: int
) -> Transaction:
    """The real-time control decision: flag if total stock may be low.

    ``reorder`` is True when the total *might* be below the reorder
    point under some resolution of the uncertainty (a conservative
    trigger — ordering slightly early is the safe direction), and
    ``certainly_low`` when every resolution is below it.  Both are modal
    queries over the lifted sum, so the answer is always a plain bool.
    """
    items = tuple(stock_item(warehouse, product) for warehouse in warehouses)

    def body(ctx):
        total = combine(
            lambda *stocks: sum(stocks),
            *(ctx.read_raw(item) for item in items),
        )
        ctx.output(
            "reorder", possibly(lambda level: level < reorder_point, total)
        )
        ctx.output(
            "certainly_low",
            definitely(lambda level: level < reorder_point, total),
        )

    return Transaction(
        body=body, items=items, label=f"reorder-check:{product}"
    )


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------


def stock_never_negative(state: Mapping[ItemId, Value]) -> bool:
    """No possible resolution of any stock item is negative."""
    return all(
        definitely(lambda level: level >= 0, value)
        for item, value in state.items()
        if item.startswith("stock:")
    )


@dataclass
class InventoryWorkload:
    """A seedable stream of orders, restocks and rebalances."""

    system: DistributedSystem
    warehouses: Sequence[str]
    products: Sequence[str]
    seed: int = 0
    restock_probability: float = 0.2
    rebalance_probability: float = 0.2
    max_quantity: int = 5

    def __post_init__(self) -> None:
        from repro.sim.rand import Rng

        self._rng = Rng(self.seed)
        self.handles = []
        self._arrivals = None

    def stream(self, rate: float):
        """Submit operations in a Poisson stream at *rate* per second."""
        from repro.workloads.generator import ArrivalProcess

        self._arrivals = ArrivalProcess(
            self.system.sim, rate, self.submit_one, self._rng.fork("arrivals")
        )
        return self._arrivals

    def stop_stream(self) -> None:
        """Stop a stream started with :meth:`stream`."""
        if self._arrivals is not None:
            self._arrivals.stop()

    def submit_one(self):
        """Submit one random inventory operation; returns its handle."""
        product = self._rng.choice(list(self.products))
        quantity = self._rng.randint(1, self.max_quantity)
        roll = self._rng.uniform(0.0, 1.0)
        if roll < self.restock_probability:
            warehouse = self._rng.choice(list(self.warehouses))
            transaction = restock(warehouse, product, quantity)
        elif (
            roll < self.restock_probability + self.rebalance_probability
            and len(self.warehouses) >= 2
        ):
            source, target = self._rng.sample(list(self.warehouses), 2)
            transaction = rebalance(source, target, product, quantity)
        else:
            warehouse = self._rng.choice(list(self.warehouses))
            transaction = order(warehouse, product, quantity)
        handle = self.system.submit(transaction)
        self.handles.append(handle)
        return handle
