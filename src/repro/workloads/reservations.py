"""Reservations — the paper's second application (§5).

    "If the number of reservations granted is a polyvalue, then a new
    reservation can be granted so long as the largest value in that
    polyvalue is less than the number of available rooms or seats.
    This will be discovered when the reservation-granting transaction
    is run as a polytransaction: All alternative transactions of such a
    polytransaction will decide to grant the reservation."

Each flight is one database item holding its sold-seat count; capacity
is configuration (immutable, so it needs no distributed coordination).
:func:`reserve` implements exactly the quoted rule via alternative-
transaction partitioning: when the sold count is uncertain, every
alternative makes its own grant decision, and the decisions collapse to
a certain "granted" whenever even the largest possible count still fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

from repro.core.polyvalue import Value, definitely, possibly
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction

FlightId = str


def flight_items(count: int, prefix: str = "flight") -> List[FlightId]:
    """Flight item identifiers ``flight-00`` ..."""
    width = max(2, len(str(count - 1)))
    return [f"{prefix}-{index:0{width}d}" for index in range(count)]


def reserve(flight: FlightId, capacity: int, party_size: int = 1) -> Transaction:
    """Grant a reservation if the flight has room.

    The read partitions on uncertainty; each alternative transaction
    checks its own sold count.  Under uncertainty, if *every*
    alternative grants (the paper's "largest value ... less than the
    number of available seats" condition) the ``granted`` output is a
    plain True; only near the capacity boundary does the output itself
    become uncertain.
    """
    if capacity <= 0 or party_size <= 0:
        raise ValueError("capacity and party_size must be positive")

    def body(ctx):
        sold = ctx.read(flight)
        if sold + party_size <= capacity:
            ctx.write(flight, sold + party_size)
            ctx.output("granted", True)
        else:
            ctx.output("granted", False)

    return Transaction(
        body=body, items=(flight,), label=f"reserve:{flight}:{party_size}"
    )


def cancel(flight: FlightId, party_size: int = 1) -> Transaction:
    """Release seats (sold count never drops below zero)."""
    if party_size <= 0:
        raise ValueError("party_size must be positive")

    def body(ctx):
        sold = ctx.read(flight)
        ctx.write(flight, max(0, sold - party_size))

    return Transaction(
        body=body, items=(flight,), label=f"cancel:{flight}:{party_size}"
    )


def seats_remaining(flight: FlightId, capacity: int) -> Transaction:
    """The §3.4 "ticket agent" inquiry: an uncertain answer is fine.

    "Most of the time, a ticket agent would not be bothered by an
    uncertain answer to a request for the number of seats remaining on
    a flight."  The output is presented raw — possibly a polyvalue.
    """

    def body(ctx):
        sold = ctx.read_raw(flight)
        from repro.core.polyvalue import combine

        ctx.output("remaining", combine(lambda s: capacity - s, sold))

    return Transaction(body=body, items=(flight,), label=f"remaining:{flight}")


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------


def never_oversold(sold: Value, capacity: int) -> bool:
    """True iff no possible resolution exceeds *capacity*.

    The safety property a reservations system must keep even while the
    sold count is uncertain: every value the polyvalue could resolve to
    must fit.
    """
    return definitely(lambda count: 0 <= count <= capacity, sold)


def might_be_full(sold: Value, capacity: int, party_size: int = 1) -> bool:
    """True iff some possible resolution cannot fit *party_size* more."""
    return possibly(lambda count: count + party_size > capacity, sold)


@dataclass
class ReservationsWorkload:
    """A seedable stream of reservations and cancellations."""

    system: DistributedSystem
    capacities: Mapping[FlightId, int]
    seed: int = 0
    cancel_probability: float = 0.15
    max_party: int = 3

    def __post_init__(self) -> None:
        from repro.sim.rand import Rng

        self._rng = Rng(self.seed)
        self.handles = []
        self._flights = sorted(self.capacities)
        self._arrivals = None

    def stream(self, rate: float):
        """Submit operations in a Poisson stream at *rate* per second."""
        from repro.workloads.generator import ArrivalProcess

        self._arrivals = ArrivalProcess(
            self.system.sim, rate, self.submit_one, self._rng.fork("arrivals")
        )
        return self._arrivals

    def stop_stream(self) -> None:
        """Stop a stream started with :meth:`stream`."""
        if self._arrivals is not None:
            self._arrivals.stop()

    def submit_one(self):
        """Submit one reservation (or cancellation); returns its handle."""
        flight = self._rng.choice(self._flights)
        party = self._rng.randint(1, self.max_party)
        if self._rng.bernoulli(self.cancel_probability):
            transaction = cancel(flight, party)
        else:
            transaction = reserve(flight, self.capacities[flight], party)
        handle = self.system.submit(transaction)
        self.handles.append(handle)
        return handle
