"""Experiment runner: workload + failures + invariant checking, in one call.

The integration tests and several benches share a shape: drive a
workload into a system while a failure injector runs, let everything
settle, then check the global guarantees (convergence, bookkeeping
emptiness, serial equivalence).  :class:`ExperimentRunner` packages
that shape for library users, and :func:`serial_replay` exposes the
ground-truth check on its own: re-execute exactly the committed
transactions, serially, in commit order, against a fresh copy of the
initial state — a correct run's final database must equal it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.core.errors import SimulationError
from repro.core.polytransaction import execute
from repro.core.polyvalue import Value
from repro.obs.export import prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TransactionHandle, TxnStatus

ItemId = str


def serial_replay(
    handles: Iterable[TransactionHandle],
    initial_values: Mapping[ItemId, Value],
) -> Dict[ItemId, Value]:
    """The state a serial execution of the committed transactions yields.

    Committed handles are replayed in commit (decision) order; aborted
    and pending transactions contribute nothing.  This is the paper's
    correctness criterion made executable: "the database state reached
    by an execution of a set of transactions must be the same as that
    reached by some serial execution of the transactions."
    """
    committed = sorted(
        (h for h in handles if h.status is TxnStatus.COMMITTED),
        key=lambda h: h.decided_at,
    )
    state: Dict[ItemId, Value] = dict(initial_values)
    for handle in committed:
        result = execute(handle.transaction.body, state)
        state.update(result.merged_writes(state))
    return state


@dataclass
class RunReport:
    """Everything an experiment run produced."""

    simulated_seconds: float
    submitted: int
    committed: int
    aborted: int
    pending: int
    polyvalues_installed: int
    polyvalues_resolved: int
    residual_polyvalues: int
    residual_bookkeeping: int
    mean_polyvalues: Optional[float]
    serially_equivalent: Optional[bool]
    final_state: Dict[ItemId, Value] = field(default_factory=dict)
    #: The system's labeled metrics registry at report time (None when
    #: the system predates the registry — e.g. hand-built doubles).
    registry: Optional[MetricsRegistry] = None

    def to_prometheus(self) -> str:
        """The run's metrics in the Prometheus text exposition format."""
        if self.registry is None:
            raise ValueError("this report carries no metrics registry")
        return prometheus_text(self.registry)

    @property
    def converged(self) -> bool:
        """No residual uncertainty, bookkeeping, or undecided work."""
        return (
            self.residual_polyvalues == 0
            and self.residual_bookkeeping == 0
            and self.pending == 0
        )

    @property
    def commit_rate(self) -> float:
        decided = self.committed + self.aborted
        return self.committed / decided if decided else 0.0

    def summary_lines(self) -> List[str]:
        """Human-readable report (for examples and bench output)."""
        lines = [
            f"simulated {self.simulated_seconds:g}s: "
            f"{self.committed} committed, {self.aborted} aborted, "
            f"{self.pending} pending",
            f"polyvalues: {self.polyvalues_installed} installed, "
            f"{self.polyvalues_resolved} resolved, "
            f"{self.residual_polyvalues} residual",
        ]
        if self.mean_polyvalues is not None:
            lines.append(
                f"time-weighted mean polyvalues: {self.mean_polyvalues:.3f}"
            )
        if self.serially_equivalent is not None:
            lines.append(
                f"serially equivalent to committed history: "
                f"{self.serially_equivalent}"
            )
        return lines


class ExperimentRunner:
    """Run a workload (and optional failures) to convergence.

    Parameters
    ----------
    system:
        The system under test.  Any failure injector should already be
        attached to ``system.sim`` (ScriptedFailures / RandomFailures).
    workload:
        An object with ``start()``/``stop()`` and a ``handles`` list
        (e.g. :class:`~repro.workloads.generator.RandomUpdateWorkload`),
        or None to run only whatever was submitted by hand.
    initial_values:
        Required for the serial-equivalence check; omit to skip it.
    workload_name:
        Label value under which this run's transaction deltas are
        recorded in the ``repro_workload_transactions_total`` counter
        (default: the workload object's class name, or ``"adhoc"``).
    """

    def __init__(
        self,
        system: DistributedSystem,
        *,
        workload=None,
        initial_values: Optional[Mapping[ItemId, Value]] = None,
        workload_name: str = "",
    ) -> None:
        self._system = system
        self._workload = workload
        self._initial_values = (
            dict(initial_values) if initial_values is not None else None
        )
        if not workload_name:
            workload_name = (
                type(workload).__name__ if workload is not None else "adhoc"
            )
        self._workload_name = workload_name

    def run(
        self,
        duration: float,
        *,
        settle: float = 30.0,
        settle_step: float = 1.0,
        max_settle: float = 300.0,
    ) -> RunReport:
        """Drive for *duration* simulated seconds, then settle.

        Settling runs in *settle_step* increments past the minimum
        *settle* window until the system converges (or *max_settle*
        elapses — a run that cannot converge returns a report with
        ``converged == False`` rather than raising, so callers can
        inspect what was left).
        """
        if duration <= 0:
            raise SimulationError(f"duration must be positive, got {duration}")
        system = self._system
        metrics = system.metrics
        before = (metrics.submitted, metrics.committed, metrics.aborted)
        if self._workload is not None:
            self._workload.start()
        system.run_for(duration)
        if self._workload is not None:
            self._workload.stop()
        system.run_for(settle)
        settled = settle
        while settled < max_settle and not self._quiet():
            system.run_for(settle_step)
            settled += settle_step
        self._record_workload_deltas(before)
        return self._report(duration)

    def _record_workload_deltas(self, before) -> None:
        """File this run's transaction deltas under its workload label.

        The per-site counters accumulate across runs sharing a system;
        the workload-labeled counter attributes each run's share to the
        generator that produced the traffic.
        """
        metrics = self._system.metrics
        counter = metrics.registry.counter(
            "repro_workload_transactions_total",
            "Transactions per workload generator and outcome",
            ("workload", "outcome"),
        )
        for outcome, now, then in (
            ("submitted", metrics.submitted, before[0]),
            ("committed", metrics.committed, before[1]),
            ("aborted", metrics.aborted, before[2]),
        ):
            if now > then:
                counter.inc(
                    now - then, workload=self._workload_name, outcome=outcome
                )

    def _quiet(self) -> bool:
        system = self._system
        return (
            system.total_polyvalues() == 0
            and system.outcome_bookkeeping_size() == 0
            and not system.pending_handles()
        )

    def _handles(self) -> List[TransactionHandle]:
        return list(self._system.handles)

    def _report(self, duration: float) -> RunReport:
        system = self._system
        handles = self._handles()
        metrics = system.metrics
        mean_polyvalues: Optional[float] = None
        if len(metrics.polyvalue_count) > 0:
            try:
                mean_polyvalues = metrics.polyvalue_count.time_weighted_mean(
                    metrics.polyvalue_count.points[0][0], system.sim.now
                )
            except ValueError:
                mean_polyvalues = None
        serially_equivalent: Optional[bool] = None
        final_state = system.database_state()
        if self._initial_values is not None:
            expected = serial_replay(handles, self._initial_values)
            serially_equivalent = final_state == expected
        return RunReport(
            simulated_seconds=system.sim.now,
            submitted=metrics.submitted,
            committed=metrics.committed,
            aborted=metrics.aborted,
            pending=len(system.pending_handles()),
            polyvalues_installed=metrics.polyvalues_installed,
            polyvalues_resolved=metrics.polyvalues_resolved,
            residual_polyvalues=system.total_polyvalues(),
            residual_bookkeeping=system.outcome_bookkeeping_size(),
            mean_polyvalues=mean_polyvalues,
            serially_equivalent=serially_equivalent,
            final_state=final_state,
            registry=getattr(metrics, "registry", None),
        )
