"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.txn.runtime import ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction


@pytest.fixture
def three_site_system():
    """A 3-site system with six integer items, deterministic seed."""
    items = {f"item-{index}": 100 for index in range(6)}
    return DistributedSystem.build(sites=3, items=items, seed=1234)


def increment(item, amount=1):
    """A single-item increment transaction."""

    def body(ctx):
        ctx.write(item, ctx.read(item) + amount)

    return Transaction(body=body, items=(item,), label=f"inc:{item}")


def move(source, target, amount):
    """A two-item transfer transaction (unconditional)."""

    def body(ctx):
        ctx.write(source, ctx.read(source) - amount)
        ctx.write(target, ctx.read(target) + amount)

    return Transaction(
        body=body, items=(source, target), label=f"move:{source}->{target}"
    )


def run_to_decision(system, handle, limit=5.0):
    """Advance the simulation until *handle* is decided (or limit)."""
    from repro.txn.transaction import TxnStatus

    deadline = system.sim.now + limit
    while handle.status is TxnStatus.PENDING and system.sim.now < deadline:
        system.run_for(0.1)
    return handle
