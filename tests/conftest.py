"""Shared fixtures and helpers for the test suite.

Seed workflow: randomized tests take the session-scoped ``repro_seed``
fixture (default 0, so the default run is fully deterministic).  A
failing run prints the active seed in its header; re-run the exact
randomness with ``pytest --repro-seed=<N>``.

Speed: the handful of slowest tests are marked ``@pytest.mark.slow``
and skipped by default so ``pytest -x -q`` stays fast; CI passes
``--runslow`` to execute the full set.
"""

import pytest

from repro.txn.config import ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction

DEFAULT_REPRO_SEED = 0


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        type=int,
        default=DEFAULT_REPRO_SEED,
        help="seed for randomized tests (repro_seed fixture); a failing "
        "run prints the seed it used — pass it back to replay exactly",
    )
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked @pytest.mark.slow",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test, skipped unless --runslow"
    )


def pytest_report_header(config):
    return f"repro-seed: {config.getoption('--repro-seed')}"


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow; use --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def repro_seed(request):
    """The session's seed for randomized tests (``--repro-seed``)."""
    return request.config.getoption("--repro-seed")


@pytest.fixture
def three_site_system():
    """A 3-site system with six integer items, deterministic seed."""
    items = {f"item-{index}": 100 for index in range(6)}
    return DistributedSystem.build(sites=3, items=items, seed=1234)


def increment(item, amount=1):
    """A single-item increment transaction."""

    def body(ctx):
        ctx.write(item, ctx.read(item) + amount)

    return Transaction(body=body, items=(item,), label=f"inc:{item}")


def move(source, target, amount):
    """A two-item transfer transaction (unconditional)."""

    def body(ctx):
        ctx.write(source, ctx.read(source) - amount)
        ctx.write(target, ctx.read(target) + amount)

    return Transaction(
        body=body, items=(source, target), label=f"move:{source}->{target}"
    )


def run_to_decision(system, handle, limit=5.0):
    """Advance the simulation until *handle* is decided (or limit)."""
    from repro.txn.transaction import TxnStatus

    deadline = system.sim.now + limit
    while handle.status is TxnStatus.PENDING and system.sim.now < deadline:
        system.run_for(0.1)
    return handle
