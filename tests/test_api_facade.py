"""Tests for the stable public facade (``repro.api``) and its shims.

The facade is the supported import surface: everything in its
``__all__`` must resolve, the old deep-import paths it replaces must
keep working but warn, and the performance-cache knobs it re-exports
must round-trip.
"""

import importlib
import warnings

import pytest

import repro
import repro.api as api


# ----------------------------------------------------------------------
# Facade surface
# ----------------------------------------------------------------------


def test_all_is_sorted_unique_and_public():
    assert api.__all__ == sorted(api.__all__)
    assert len(api.__all__) == len(set(api.__all__))
    assert not [name for name in api.__all__ if name.startswith("_")]


def test_every_exported_name_resolves():
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert missing == []


def test_facade_covers_the_top_level_package():
    """Everything ``repro`` itself exports is also on the facade."""
    missing = [
        name
        for name in repro.__all__
        if name != "__version__" and not hasattr(api, name)
    ]
    assert missing == []


def test_facade_identities_match_the_defining_modules():
    from repro.core.conditions import Condition
    from repro.core.polyvalue import Polyvalue
    from repro.txn.system import DistributedSystem

    assert api.Condition is Condition
    assert api.Polyvalue is Polyvalue
    assert api.DistributedSystem is DistributedSystem


def test_facade_quickstart_runs():
    system = api.DistributedSystem.build(sites=3, items={"a": 10}, seed=7)
    handle = system.submit(
        api.Transaction(
            body=lambda ctx: ctx.write("a", ctx.read("a") + 1), items=("a",)
        )
    )
    system.run_for(1.0)
    assert handle.status is api.TxnStatus.COMMITTED


# ----------------------------------------------------------------------
# Deprecated deep-import shims
# ----------------------------------------------------------------------

SHIMMED = [
    ("repro.core", "Condition", "repro.core.conditions"),
    ("repro.core", "Polyvalue", "repro.core.polyvalue"),
    ("repro.core", "combine", "repro.core.polyvalue"),
    ("repro.core", "parse_condition", "repro.core.parser"),
    ("repro.txn", "DistributedSystem", "repro.txn.system"),
    ("repro.txn", "Transaction", "repro.txn.transaction"),
    ("repro.txn", "blocking_system", "repro.txn.baselines"),
]


@pytest.mark.parametrize("package, name, home", SHIMMED)
def test_deprecated_deep_import_warns_but_works(package, name, home):
    shimmed_from = importlib.import_module(package)
    with pytest.warns(DeprecationWarning, match="repro.api"):
        resolved = getattr(shimmed_from, name)
    assert resolved is getattr(importlib.import_module(home), name)
    assert resolved is getattr(api, name)


@pytest.mark.parametrize("package, name, home", SHIMMED)
def test_deprecated_access_warns_every_time(package, name, home):
    """The shim must not cache the name — each access should warn."""
    shimmed_from = importlib.import_module(package)
    for _ in range(2):
        with pytest.warns(DeprecationWarning):
            getattr(shimmed_from, name)


@pytest.mark.parametrize("package", ["repro.core", "repro.txn"])
def test_unknown_attribute_still_raises_attribute_error(package):
    module = importlib.import_module(package)
    with pytest.raises(AttributeError, match="no attribute"):
        module.does_not_exist


def test_supported_non_deprecated_names_do_not_warn():
    """Exception hierarchy and protocol internals stay warning-free."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.core import ConditionError  # noqa: F401
        from repro.txn import Coordinator, Participant  # noqa: F401


def test_facade_import_itself_is_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        for module in ("repro", "repro.api", "repro.bench"):
            importlib.reload(importlib.import_module(module))


# ----------------------------------------------------------------------
# Cache knobs re-exported through the facade
# ----------------------------------------------------------------------


def test_cache_knobs_round_trip():
    try:
        api.configure_caches(128)
        info = api.cache_info()
        assert set(info) >= {"and", "or", "invert", "substitute"}
        assert all(stats.maxsize == 128 for stats in info.values())

        a = api.Condition.of("T1") & api.Condition.not_of("T2")
        b = api.Condition.of("T1") & api.Condition.not_of("T2")
        assert a is b  # interning is independent of cache size

        api.clear_caches()
        assert all(
            stats.currsize == 0 for stats in api.cache_info().values()
        )
    finally:
        api.configure_caches()


def test_disabling_caches_keeps_algebra_working():
    try:
        api.configure_caches(0)
        c = api.Condition.of("T1") | ~api.Condition.of("T2")
        assert c.substitute({"T1": True}).is_tautology()
    finally:
        api.configure_caches()
