"""API-surface lint: the txn state machines depend only on the Runtime.

The point of the Runtime seam (docs/runtime.md) is that coordinator,
participant, paxos, and path-sensitive state machines are portable
between the simulator and the live asyncio transport.  That only holds
if nothing under ``repro.txn`` reaches directly for the simulator or
the sim network — every clock read, timer, send, and RNG draw must go
through :class:`repro.runtime.base.Runtime`.

This test walks the AST of every module in ``src/repro/txn`` and fails
on any import of the banned substrate modules.  ``system.py`` is the
one exemption: it is the *sim* composition root, whose whole job is to
assemble Simulator + Network + SimRuntime (the live counterpart,
``repro.live.cluster``, lives outside the package for the same reason).
"""

from __future__ import annotations

import ast
import pathlib

import pytest

TXN_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "src" / "repro" / "txn"
)

#: Modules the protocol layer must not touch (prefix match): the sim
#: engine, the sim network, and the sim failure injectors.  The message
#: types (repro.net.message) are transport-neutral data and stay legal.
BANNED_PREFIXES = (
    "repro.sim",
    "repro.net.network",
    "repro.net.failures",
)

#: The sim composition root — the one module allowed to see the sim.
EXEMPT = {"system.py"}


def _banned(module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in BANNED_PREFIXES
    )


def _violations(path: pathlib.Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _banned(alias.name):
                    found.append(
                        f"{path.name}:{node.lineno}: import {alias.name}"
                    )
        elif isinstance(node, ast.ImportFrom):
            # Relative imports stay inside repro.txn and cannot name the
            # banned modules; level>0 has module=None for bare "from . ".
            if node.module and node.level == 0 and _banned(node.module):
                found.append(
                    f"{path.name}:{node.lineno}: from {node.module} import ..."
                )
    return found


def txn_modules():
    return sorted(
        p for p in TXN_DIR.glob("*.py") if p.name not in EXEMPT
    )


def test_txn_layer_exists():
    assert TXN_DIR.is_dir()
    assert len(txn_modules()) >= 5


@pytest.mark.parametrize("path", txn_modules(), ids=lambda p: p.name)
def test_txn_module_does_not_reach_the_simulator(path):
    violations = _violations(path)
    assert not violations, (
        "protocol code must depend on repro.runtime.base.Runtime, not the "
        "sim substrate:\n  " + "\n  ".join(violations)
    )


def test_lint_catches_a_banned_import(tmp_path):
    """The linter itself is live: a planted violation is reported."""
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.sim.engine import Simulator\n"
        "import repro.net.network\n",
        encoding="utf-8",
    )
    assert len(_violations(bad)) == 2


def test_exempt_system_module_is_the_composition_root():
    """system.py must still exist — the exemption is not dead config."""
    assert (TXN_DIR / "system.py").is_file()
