"""Tests for the EFT application (repro.workloads.banking)."""

import pytest

from repro.core.conditions import Condition
from repro.core.polyvalue import Polyvalue, is_polyvalue
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.banking import (
    BankingWorkload,
    account_items,
    authorize,
    balance_inquiry,
    deposit,
    funds_conserved,
    total_funds_possibilities,
    transfer,
)

from tests.conftest import run_to_decision


def bank(accounts=4, balance=100, seed=5):
    items = {acct: balance for acct in account_items(accounts)}
    return DistributedSystem.build(sites=3, items=items, seed=seed), items


class TestPureHelpers:
    def test_account_items_naming(self):
        assert account_items(2) == ["acct-000", "acct-001"]

    def test_total_funds_simple(self):
        assert total_funds_possibilities({"a": 100, "b": 50}) == [150]

    def test_total_funds_correlated_uncertainty(self):
        # One in-doubt transfer: totals match under both outcomes.
        t = Condition.of("T1")
        state = {
            "a": Polyvalue([(70, t), (100, ~t)]),
            "b": Polyvalue([(130, t), (100, ~t)]),
        }
        assert total_funds_possibilities(state) == [200]
        assert funds_conserved(state, 200)

    def test_conservation_violation_detected(self):
        t = Condition.of("T1")
        state = {"a": 100, "b": Polyvalue([(130, t), (100, ~t)])}
        assert not funds_conserved(state, 200)

    def test_amount_validation(self):
        with pytest.raises(ValueError):
            transfer("a", "b", 0)
        with pytest.raises(ValueError):
            authorize("a", -1)
        with pytest.raises(ValueError):
            deposit("a", 0)


class TestTransfer:
    def test_successful_transfer(self):
        system, _ = bank()
        handle = system.submit(transfer("acct-000", "acct-001", 30))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert handle.outputs["transferred"] is True
        assert system.read_item("acct-000") == 70
        assert system.read_item("acct-001") == 130

    def test_insufficient_funds_declines(self):
        system, _ = bank(balance=10)
        handle = system.submit(transfer("acct-000", "acct-001", 30))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert handle.outputs["transferred"] is False
        assert system.read_item("acct-000") == 10

    def test_funds_conserved_over_many_transfers(self):
        system, items = bank()
        workload = BankingWorkload(
            system,
            account_items(4),
            seed=3,
            transfer_weight=1.0,
            authorize_weight=0.0,
        )
        for _ in range(15):
            workload.submit_one()
            system.run_for(0.3)
        system.run_for(3.0)
        assert funds_conserved(system.database_state(), 400)


class TestAuthorize:
    def test_authorize_against_certain_balance(self):
        system, _ = bank()
        handle = system.submit(authorize("acct-000", 60))
        run_to_decision(system, handle)
        assert handle.outputs["approved"] is True
        assert system.read_item("acct-000") == 40

    def test_authorize_decline_leaves_balance(self):
        system, _ = bank(balance=10)
        handle = system.submit(authorize("acct-000", 60))
        run_to_decision(system, handle)
        assert handle.outputs["approved"] is False
        assert system.read_item("acct-000") == 10

    def test_authorize_under_uncertainty_small_amount_approves(self):
        # Put acct-001 in doubt via a crashed transfer, then authorize
        # an amount below the SMALLEST possible balance: the answer is
        # a certain yes even though the balance is a polyvalue (§5).
        system, _ = bank()
        system.submit(transfer("acct-000", "acct-001", 30))
        system.run_for(0.05)
        system.crash_site("site-0")
        system.run_for(2.0)
        balance = system.read_item("acct-001")
        assert is_polyvalue(balance)  # {130 if T, 100 if ~T}
        handle = system.submit(authorize("acct-001", 50), at="site-1")
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert handle.outputs["approved"] is True  # simple, certain
        # The debited balance carries the uncertainty instead.
        assert is_polyvalue(system.read_item("acct-001"))

    def test_authorize_under_uncertainty_resolves_correctly(self):
        system, _ = bank()
        system.submit(transfer("acct-000", "acct-001", 30))
        system.run_for(0.05)
        system.crash_site("site-0")
        system.run_for(2.0)
        system.submit(authorize("acct-001", 50), at="site-1")
        system.run_for(2.0)
        system.recover_site("site-0")
        system.run_for(6.0)
        # Presumed abort of the transfer: 100 - 50 = 50.
        assert system.read_item("acct-001") == 50
        assert system.total_polyvalues() == 0

    def test_output_certainty_metric(self):
        system, _ = bank()
        handle = system.submit(authorize("acct-000", 60))
        run_to_decision(system, handle)
        assert system.metrics.certain_outputs >= 1


class TestInquiryAndDeposit:
    def test_deposit(self):
        system, _ = bank()
        handle = system.submit(deposit("acct-002", 25))
        run_to_decision(system, handle)
        assert system.read_item("acct-002") == 125

    def test_inquiry_returns_balance(self):
        system, _ = bank()
        handle = system.submit(balance_inquiry("acct-000"))
        run_to_decision(system, handle)
        assert handle.outputs["balance"] == 100

    def test_inquiry_presents_uncertain_output(self):
        # Section 3.4: presenting the uncertain output is allowed.
        system, _ = bank()
        system.submit(transfer("acct-000", "acct-001", 30))
        system.run_for(0.05)
        system.crash_site("site-0")
        system.run_for(2.0)
        handle = system.submit(balance_inquiry("acct-001"), at="site-1")
        run_to_decision(system, handle)
        reported = handle.outputs["balance"]
        assert is_polyvalue(reported)
        assert set(reported.possible_values()) == {130, 100}
        assert system.metrics.uncertain_outputs >= 1


class TestWorkloadDriver:
    def test_mixed_workload_runs_clean(self):
        system, _ = bank()
        workload = BankingWorkload(system, account_items(4), seed=11)
        for _ in range(20):
            workload.submit_one()
            system.run_for(0.3)
        system.run_for(3.0)
        decided = [
            h for h in workload.handles if h.status is not TxnStatus.PENDING
        ]
        assert len(decided) == 20
        assert system.total_polyvalues() == 0

    def test_workload_deterministic(self):
        def run(seed):
            system, _ = bank(seed=seed)
            workload = BankingWorkload(system, account_items(4), seed=seed)
            for _ in range(10):
                workload.submit_one()
                system.run_for(0.3)
            system.run_for(2.0)
            return system.database_state()

        assert run(8) == run(8)
