"""Integration tests for the two baseline commit policies (section 2).

Each test drives the identical in-doubt scenario as
tests/test_protocol_failures.py — transfer item-0 -> item-1, crash the
coordinator at 50 ms — under a different wait-timeout policy, and
checks the policy-specific consequence.
"""

import pytest

from repro.core.polyvalue import is_polyvalue
from repro.txn.baselines import blocking_system, polyvalue_system, relaxed_system
from repro.txn.transaction import TxnStatus

from tests.conftest import increment, move, run_to_decision

ITEMS = {f"item-{index}": 100 for index in range(6)}


def crash_in_window(system):
    handle = system.submit(move("item-0", "item-1", 30))
    system.run_for(0.05)
    system.crash_site("site-0")
    system.run_for(2.0)
    return handle


class TestBlockingBaseline:
    def test_no_polyvalues_created(self):
        system = blocking_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        assert system.total_polyvalues() == 0

    def test_item_stays_locked_while_in_doubt(self):
        system = blocking_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        site1 = system.sites["site-1"]
        assert "item-1" in site1.runtime.locks.locked_items()
        assert site1.participant.blocked_transactions()

    def test_new_transaction_on_blocked_item_aborts(self):
        system = blocking_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        # The availability cost of blocking: the item is unavailable.
        assert handle.status is TxnStatus.ABORTED

    def test_outcome_learned_after_recovery_unblocks(self):
        system = blocking_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        system.recover_site("site-0")
        system.run_for(6.0)
        site1 = system.sites["site-1"]
        assert site1.runtime.locks.locked_items() == frozenset()
        # Presumed abort -> old value, exact (never a polyvalue).
        assert system.read_item("item-1") == 100

    def test_blocked_item_seconds_accounted(self):
        system = blocking_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        system.recover_site("site-0")
        system.run_for(6.0)
        assert system.metrics.blocked_item_seconds > 1.0

    def test_transactions_after_unblock_succeed(self):
        system = blocking_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        system.recover_site("site-0")
        system.run_for(6.0)
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-1") == 101


class TestRelaxedBaseline:
    def test_unilateral_decision_recorded(self):
        system = relaxed_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        assert system.metrics.unilateral_decisions >= 1
        assert system.total_polyvalues() == 0

    def test_unilateral_commit_applies_new_value(self):
        # Default relaxed_commit_probability=1.0: always commit.
        system = relaxed_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        assert system.read_item("item-1") == 130

    def test_inconsistency_detected_after_recovery(self):
        # The coordinator's actual outcome is abort (it crashed before
        # deciding); the participant guessed commit -> inconsistent.
        system = relaxed_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        system.recover_site("site-0")
        system.run_for(6.0)
        assert system.metrics.inconsistent_decisions >= 1

    def test_database_left_inconsistent(self):
        # The cost of the relaxed policy (section 2.3: "a transaction
        # may be performed incorrectly (some but not all of the updates
        # performed)"): partition the remote participant so its ready
        # is lost.  The coordinator times out and aborts (rolling back
        # item-0); the partitioned participant times out in wait and
        # unilaterally commits item-1.  Money is created.
        system = relaxed_system(sites=3, items=ITEMS, seed=42)
        handle = system.submit(move("item-0", "item-1", 30))
        system.run_for(0.046)  # stage delivered; ready about to fly
        system.network.partition("site-0", "site-1")
        system.run_for(3.0)
        assert handle.status is TxnStatus.ABORTED
        assert system.read_item("item-0") == 100
        assert system.read_item("item-1") == 130
        total = system.read_item("item-0") + system.read_item("item-1")
        assert total != 200  # atomicity violated

    def test_item_available_immediately(self):
        system = relaxed_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED


class TestPolyvaluePolicyContrast:
    def test_polyvalue_gets_both_availability_and_consistency(self):
        system = polyvalue_system(sites=3, items=ITEMS, seed=42)
        crash_in_window(system)
        # Available:
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        # And consistent after recovery:
        system.recover_site("site-0")
        system.run_for(6.0)
        assert system.read_item("item-0") == 100
        assert system.read_item("item-1") == 101
        assert system.total_polyvalues() == 0

    def test_three_policies_same_scenario_differ_as_documented(self):
        outcomes = {}
        for name, factory in (
            ("polyvalue", polyvalue_system),
            ("blocking", blocking_system),
            ("relaxed", relaxed_system),
        ):
            system = factory(sites=3, items=ITEMS, seed=42)
            crash_in_window(system)
            probe = system.submit(increment("item-1"), at="site-1")
            run_to_decision(system, probe)
            outcomes[name] = probe.status
        assert outcomes["polyvalue"] is TxnStatus.COMMITTED
        assert outcomes["blocking"] is TxnStatus.ABORTED
        assert outcomes["relaxed"] is TxnStatus.COMMITTED
