"""Tests for the persistent campaign store (repro.obs.store)."""

import math
import sqlite3

import pytest

from repro.obs.events import EventBus
from repro.obs.store import (
    IN_DOUBT_HIST,
    SCHEMA_VERSION,
    CampaignRecorder,
    CampaignStore,
    StoreError,
    bench_baseline_from_run,
    default_store_path,
    migration_round_trip,
    record_bench_report,
    record_exploration_report,
)


class TestRunLifecycle:
    def test_begin_finish_round_trip(self):
        with CampaignStore() as store:
            run_id = store.begin_run(
                "chaos", label="chaos", campaign_seed=7, jobs=4,
                config={"seeds": 3, "smoke": True},
            )
            run = store.run(run_id)
            assert not run.finished and run.ok is None
            assert run.command == "chaos" and run.campaign_seed == 7
            assert run.config == {"seeds": 3, "smoke": True}
            store.finish_run(run_id, ok=True, wall_seconds=1.25)
            run = store.run(run_id)
            assert run.finished and run.ok is True
            assert run.wall_seconds == 1.25

    def test_unknown_run_raises(self):
        with CampaignStore() as store:
            with pytest.raises(StoreError):
                store.run(99)

    def test_finish_counts_default_to_trial_rows(self):
        with CampaignStore() as store:
            run_id = store.begin_run("check")
            store.record_trial(run_id, 0, ok=True)
            store.record_trial(run_id, 1, ok=False)
            store.record_trial(run_id, 2, ok=True)
            store.finish_run(run_id, ok=False)
            run = store.run(run_id)
            assert run.trials == 3 and run.failures == 1

    def test_same_config_shares_fingerprint(self):
        with CampaignStore() as store:
            a = store.begin_run("bench", config={"mode": "full", "seed": 1})
            b = store.begin_run("bench", config={"seed": 1, "mode": "full"})
            c = store.begin_run("bench", config={"mode": "full", "seed": 2})
            fp = store.run(a).fingerprint
            assert store.run(b).fingerprint == fp  # key order irrelevant
            assert store.run(c).fingerprint != fp
            assert len(fp) == 8

    def test_runs_filtering_and_latest(self):
        with CampaignStore() as store:
            first = store.begin_run("chaos", started_at=100.0)
            store.finish_run(first, ok=True)
            second = store.begin_run("bench", started_at=200.0)
            store.finish_run(second, ok=True)
            third = store.begin_run("chaos", started_at=300.0)
            assert [r.id for r in store.runs()] == [first, second, third]
            assert [r.id for r in store.runs(command="chaos")] == [
                first, third,
            ]
            assert [r.id for r in store.runs(since=150.0)] == [second, third]
            assert [r.id for r in store.runs(limit=2)] == [second, third]
            # latest_run skips the unfinished third by default...
            assert store.latest_run("chaos").id == first
            assert store.latest_run(
                "chaos", finished_only=False
            ).id == third
            # ...and `before` lets a fresh run find its predecessor.
            assert store.latest_run("bench", before=second) is None


class TestTrialUpsert:
    def test_streaming_then_reduce_merge(self):
        """The recorder writes (index, ok) live; the reduce step adds
        seed/scenario/detail later — non-None overwrites, None kept."""
        with CampaignStore() as store:
            run_id = store.begin_run("chaos")
            store.record_trial(run_id, 0, ok=True)
            store.record_trial(
                run_id, 0, seed=42, scenario="crash", label="chaos",
                detail={"events": 10},
            )
            (trial,) = store.trials(run_id)
            assert trial.ok is True
            assert trial.seed == 42 and trial.scenario == "crash"
            assert trial.detail == {"events": 10}

    def test_none_never_clears(self):
        with CampaignStore() as store:
            run_id = store.begin_run("chaos")
            store.record_trial(run_id, 0, seed=7, ok=False)
            store.record_trial(run_id, 0)  # all-None enrichment
            (trial,) = store.trials(run_id)
            assert trial.seed == 7 and trial.ok is False


class TestEvidence:
    def test_metrics_overwrite_within_run(self):
        with CampaignStore() as store:
            run_id = store.begin_run("bench")
            store.record_metric(run_id, "speedup", 10.0)
            store.record_metric(run_id, "speedup", 12.5, unit="guard")
            assert store.metrics(run_id) == {"speedup": 12.5}

    def test_record_metrics_skips_non_finite_and_non_numeric(self):
        with CampaignStore() as store:
            run_id = store.begin_run("bench")
            store.record_metrics(run_id, {
                "good": 1.5, "flag": True, "bad": float("nan"),
                "text": "nope", "inf": float("inf"),
            })
            assert store.metrics(run_id) == {"good": 1.5, "flag": 1.0}

    def test_verdicts_preserve_order_and_scope(self):
        with CampaignStore() as store:
            run_id = store.begin_run("check")
            store.record_verdict(run_id, "conservation", False,
                                 trial_index=3, phase="converged",
                                 details="item drifted")
            store.record_verdict(run_id, "serializability", True)
            first, second = store.verdicts(run_id)
            assert first.oracle == "conservation" and not first.ok
            assert first.trial_index == 3 and first.phase == "converged"
            assert second.ok and second.trial_index is None

    def test_histogram_round_trips_infinity(self):
        with CampaignStore() as store:
            run_id = store.begin_run("chaos")
            pairs = [(0.1, 3), (1.0, 2), (math.inf, 1)]
            store.record_histogram(run_id, IN_DOUBT_HIST, pairs)
            assert store.histogram(run_id, IN_DOUBT_HIST) == pairs
            assert store.histogram_names(run_id) == [IN_DOUBT_HIST]

    def test_metric_history_trends_across_runs(self):
        with CampaignStore() as store:
            for value in (10.0, 12.0, 11.0):
                run_id = store.begin_run("bench")
                store.record_metric(run_id, "speedup", value)
                store.finish_run(run_id, ok=True)
            history = store.metric_history("speedup")
            assert [value for _, value in history] == [10.0, 12.0, 11.0]
            assert [run.id for run, _ in history] == [1, 2, 3]
            assert store.metric_names() == ["speedup"]


class TestRecorder:
    def test_streams_trials_from_bus(self):
        with CampaignStore() as store:
            bus = EventBus()
            recorder = CampaignRecorder(
                store, command="chaos", label="chaos", campaign_seed=7,
                jobs=2, bus=bus,
            )
            bus.emit("campaign.start", time=0.0, label="chaos", trials=2,
                     jobs=2, chunks=2)
            bus.emit("campaign.trial", time=0.1, label="chaos", index=0,
                     ok=True)
            bus.emit("campaign.trial", time=0.2, label="chaos", index=1,
                     ok=False, error="worker died (exit 9)")
            trials = store.trials(recorder.run_id)
            assert [(t.index, t.ok) for t in trials] == [(0, True), (1, False)]
            assert trials[1].detail == {"error": "worker died (exit 9)"}
            recorder.finish(ok=False)
            run = store.run(recorder.run_id)
            assert run.finished and run.ok is False
            assert run.trials == 2 and run.failures == 1
            # finish() detached: further events are ignored.
            bus.emit("campaign.trial", time=0.3, label="chaos", index=5,
                     ok=True)
            assert len(store.trials(recorder.run_id)) == 2

    def test_expect_trials_pre_registers_identity(self):
        with CampaignStore() as store:
            recorder = CampaignRecorder(store, command="check")
            recorder.expect_trials([
                {"index": 0, "seed": 100, "scenario": "crash"},
                {"index": 1, "seed": 101, "scenario": "partition"},
            ])
            trials = store.trials(recorder.run_id)
            # A trial whose worker dies still has its identity on file.
            assert [(t.seed, t.scenario, t.ok) for t in trials] == [
                (100, "crash", None), (101, "partition", None),
            ]


class TestDriverBridges:
    def test_exploration_report_reproduces_headlines(self):
        from repro.check.explorer import explore

        report = explore(
            scenarios=("pair",), campaign_seed=3, trials=2,
            steps=12, include_enumeration=False, jobs=1,
        )
        with CampaignStore() as store:
            run_id = store.begin_run("check")
            record_exploration_report(store, run_id, report)
            metrics = store.metrics(run_id)
            assert metrics["schedules"] == report.schedules_run
            assert metrics["violations"] == len(report.violations)
            assert metrics["quiescent_checkpoints"] == sum(
                r.quiescent_checkpoints for r in report.results
            )
            assert metrics["events"] == sum(
                r.events_processed for r in report.results
            )
            trials = store.trials(run_id)
            assert len(trials) == len(report.results)
            for trial, result in zip(trials, report.results):
                assert trial.seed == result.schedule.seed
                assert trial.ok == result.ok
                assert trial.detail["events"] == result.events_processed
            # One aggregate verdict per oracle, all ok on a clean run.
            verdicts = store.verdicts(run_id)
            assert verdicts and all(v.ok for v in verdicts)
            assert all(v.phase == "converged" for v in verdicts)

    def test_bench_payload_and_baseline_reconstruction(self):
        payload = {
            "schema": 1,
            "mode": "smoke",
            "results": {
                "explorer_ok": True,
                "txn_commit_throughput": 500.0,
                "parallel_bitwise_identical": True,
            },
            "guards": {"condition_cache_speedup": 14.4},
        }
        with CampaignStore() as store:
            run_id = store.begin_run("bench", config={"mode": "smoke"})
            record_bench_report(store, run_id, payload)
            store.finish_run(run_id, ok=True)
            metrics = store.metrics(run_id)
            assert metrics["guard.condition_cache_speedup"] == 14.4
            assert metrics["txn_commit_throughput"] == 500.0
            oracles = {v.oracle: v.ok for v in store.verdicts(run_id)}
            assert oracles == {
                "explorer": True, "parallel-determinism": True,
            }
            baseline = bench_baseline_from_run(store, store.run(run_id))
            assert baseline["mode"] == "smoke"
            assert baseline["run_id"] == run_id
            assert baseline["guards"] == {"condition_cache_speedup": 14.4}
            assert baseline["results"]["txn_commit_throughput"] == 500.0
            assert "guard.condition_cache_speedup" not in baseline["results"]


class TestSchemaMigration:
    def test_round_trip_lifts_v1_to_current(self, tmp_path):
        assert migration_round_trip(
            str(tmp_path / "v1.sqlite")
        ) == (1, SCHEMA_VERSION)

    def test_newer_schema_is_refused(self, tmp_path):
        path = str(tmp_path / "future.sqlite")
        store = CampaignStore(path)
        store.close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        conn.close()
        with pytest.raises(StoreError, match="newer"):
            CampaignStore(path)

    def test_reopen_is_idempotent(self, tmp_path):
        path = str(tmp_path / "stable.sqlite")
        with CampaignStore(path) as store:
            run_id = store.begin_run("chaos", config={"seeds": 2})
            store.finish_run(run_id, ok=True)
        with CampaignStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION
            assert store.run(run_id).config == {"seeds": 2}


class TestDefaultPath:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert default_store_path("x.sqlite") == "x.sqlite"
        assert default_store_path() == ".repro/campaigns.sqlite"
        monkeypatch.setenv("REPRO_STORE", "/tmp/env.sqlite")
        assert default_store_path() == "/tmp/env.sqlite"
        assert default_store_path("x.sqlite") == "x.sqlite"
