"""Unit tests for data placement (repro.db.catalog)."""

import pytest

from repro.core.errors import UnknownItemError
from repro.db.catalog import Catalog


class TestPlacement:
    def test_place_and_lookup(self):
        catalog = Catalog()
        catalog.place("a", "s1")
        assert catalog.site_of("a") == "s1"
        assert catalog.items_at("s1") == ["a"]

    def test_duplicate_placement_rejected(self):
        catalog = Catalog()
        catalog.place("a", "s1")
        with pytest.raises(UnknownItemError):
            catalog.place("a", "s2")

    def test_unknown_item_raises(self):
        with pytest.raises(UnknownItemError):
            Catalog().site_of("a")

    def test_items_at_unknown_site_is_empty(self):
        assert Catalog().items_at("s1") == []

    def test_contains_and_len(self):
        catalog = Catalog()
        catalog.place("a", "s1")
        assert "a" in catalog
        assert "b" not in catalog
        assert len(catalog) == 1


class TestRoundRobin:
    def test_even_spread(self):
        catalog = Catalog.round_robin(["a", "b", "c", "d"], ["s1", "s2"])
        assert catalog.items_at("s1") == ["a", "c"]
        assert catalog.items_at("s2") == ["b", "d"]

    def test_more_sites_than_items(self):
        catalog = Catalog.round_robin(["a"], ["s1", "s2", "s3"])
        assert catalog.site_of("a") == "s1"
        assert catalog.all_sites() == frozenset({"s1"})

    def test_from_mapping(self):
        catalog = Catalog.from_mapping({"a": "s1", "b": "s2"})
        assert catalog.site_of("b") == "s2"


class TestGrouping:
    def test_sites_for_spans_involved_sites(self):
        catalog = Catalog.round_robin(["a", "b", "c"], ["s1", "s2"])
        assert catalog.sites_for(["a", "b"]) == frozenset({"s1", "s2"})
        assert catalog.sites_for(["a", "c"]) == frozenset({"s1"})

    def test_group_by_site(self):
        catalog = Catalog.round_robin(["a", "b", "c"], ["s1", "s2"])
        grouped = catalog.group_by_site(["a", "b", "c"])
        assert grouped == {"s1": ["a", "c"], "s2": ["b"]}

    def test_group_by_site_preserves_order(self):
        catalog = Catalog.round_robin(["a", "b", "c"], ["s1"])
        assert catalog.group_by_site(["c", "a"]) == {"s1": ["c", "a"]}

    def test_all_items_and_sites(self):
        catalog = Catalog.round_robin(["a", "b"], ["s1", "s2"])
        assert catalog.all_items() == frozenset({"a", "b"})
        assert catalog.all_sites() == frozenset({"s1", "s2"})
