"""Chaos testing: every fault class at once.

Message loss, message duplication, site crashes and recoveries, lock
contention and polytransactions, all in the same run — the strongest
convergence and serial-equivalence check in the suite.  hypothesis
varies the fault intensities and the schedule seed.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.failures import CrashPlan, ScriptedFailures
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.generator import (
    RandomUpdateWorkload,
    WorkloadConfig,
    make_item_ids,
)
from repro.workloads.runner import ExperimentRunner

ITEMS = 12


def run_chaos(seed, loss, duplication, crash_plan):
    values = {item: 1 for item in make_item_ids(ITEMS)}
    system = DistributedSystem.build(
        sites=3,
        items=values,
        seed=seed,
        loss_probability=loss,
        duplicate_probability=duplication,
        base_latency=0.03,
        jitter=0.01,
    )
    workload = RandomUpdateWorkload(
        system,
        WorkloadConfig(update_rate=8, dependency_mean=1),
        seed=seed,
    )
    if crash_plan:
        ScriptedFailures(system.sim, system, crash_plan)
    runner = ExperimentRunner(system, workload=workload, initial_values=values)
    report = runner.run(8.0, settle=20.0, settle_step=2.0, max_settle=240.0)
    return system, report


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss=st.sampled_from([0.0, 0.02, 0.05]),
    duplication=st.sampled_from([0.0, 0.2]),
    crash_offsets=st.lists(
        st.floats(min_value=0.5, max_value=7.0), min_size=0, max_size=3
    ),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_chaos_runs_converge_serially_equivalent(
    seed, loss, duplication, crash_offsets
):
    plan = [
        CrashPlan(f"site-{index % 3}", at=offset, duration=1.0)
        for index, offset in enumerate(sorted(crash_offsets))
    ]
    system, report = run_chaos(seed, loss, duplication, plan)
    assert report.converged, report.summary_lines()
    assert report.serially_equivalent is True
    assert report.pending == 0
    for site in system.sites.values():
        assert site.runtime.locks.locked_items() == frozenset()


def test_chaos_kitchen_sink_deterministic():
    plan = [
        CrashPlan("site-0", at=1.0, duration=1.2),
        CrashPlan("site-1", at=3.0, duration=0.8),
        CrashPlan("site-2", at=5.0, duration=1.5),
    ]
    first_system, first = run_chaos(424242, 0.05, 0.3, plan)
    second_system, second = run_chaos(424242, 0.05, 0.3, plan)
    assert first.final_state == second.final_state
    assert first.committed == second.committed
    assert first.polyvalues_installed == second.polyvalues_installed
    assert first.converged and first.serially_equivalent


class TestManySites:
    @pytest.mark.parametrize("site_count", [5, 8])
    def test_protocol_scales_to_more_sites(self, site_count):
        values = {item: 1 for item in make_item_ids(24)}
        system = DistributedSystem.build(
            sites=site_count, items=values, seed=99
        )
        workload = RandomUpdateWorkload(
            system,
            WorkloadConfig(update_rate=10, dependency_mean=2),
            seed=99,
        )
        runner = ExperimentRunner(system, workload=workload, initial_values=values)
        report = runner.run(5.0, settle=10.0)
        assert report.converged
        assert report.serially_equivalent is True
        assert report.committed > 15

    def test_wide_transaction_across_five_sites(self):
        values = {item: 10 for item in make_item_ids(5)}
        system = DistributedSystem.build(sites=5, items=values, seed=5)
        items = tuple(make_item_ids(5))

        def sum_all(ctx):
            total = sum(ctx.read(item) for item in items)
            ctx.write(items[0], total)

        from repro.txn.transaction import Transaction

        handle = system.submit(Transaction(body=sum_all, items=items))
        system.run_for(3.0)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item(items[0]) == 50

    def test_five_site_in_doubt_window_resolves(self):
        values = {item: 10 for item in make_item_ids(5)}
        system = DistributedSystem.build(
            sites=5, items=values, seed=5, jitter=0.0
        )
        items = tuple(make_item_ids(5))

        def spread(ctx):
            for item in items[1:]:
                ctx.write(item, ctx.read(item) + ctx.read(items[0]))

        from repro.txn.transaction import Transaction

        system.submit(Transaction(body=spread, items=items))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(2.0)
        # Four remote participants each installed polyvalues.
        assert system.total_polyvalues() == 4
        system.recover_site("site-0")
        system.run_for(8.0)
        assert system.total_polyvalues() == 0
        assert all(system.read_item(item) == 10 for item in items)
