"""The chaos campaign: gray + fail-stop faults judged by the oracles.

These tests pin the campaign's contract: walks stay inside the failure
vocabulary and state-consistency rules, profiles round-trip through
violation artifacts, replay is exact, and the reference smoke campaign
is green (the strongest end-to-end statement the resilience layer
makes about itself).
"""

import json
import os

import pytest

from repro.chaos import (
    SMOKE_SCENARIOS,
    ChaosProfile,
    chaos_walk,
    replay_chaos,
    run_campaign,
    run_chaos_schedule,
    system_factory,
)
from repro.check.explorer import Schedule
from repro.check.scenarios import SCENARIOS
from repro.cli import main
from repro.core.errors import SimulationError
from repro.net.failures import FailureAction

GRAY_KINDS = {
    "degrade",
    "restore",
    "link-spike",
    "link-clear",
    "partition-oneway",
    "heal-oneway",
}


class TestChaosProfile:
    def test_defaults_validate(self):
        profile = ChaosProfile()
        assert profile.adaptive
        assert profile.polyvalue_budget is None

    def test_probabilities_validated(self):
        with pytest.raises(SimulationError):
            ChaosProfile(loss_probability=1.5)
        with pytest.raises(SimulationError):
            ChaosProfile(corruption_probability=-0.1)

    def test_factors_validated(self):
        with pytest.raises(SimulationError):
            ChaosProfile(degrade_factor=0.5)

    def test_round_trips_through_dict(self):
        profile = ChaosProfile(
            loss_probability=0.05,
            adaptive=False,
            polyvalue_budget=3,
            spike_factor=7.0,
        )
        assert ChaosProfile.from_dict(profile.to_dict()) == profile

    def test_adaptive_profile_configures_resilient_stack(self):
        config = ChaosProfile(adaptive=True).protocol_config()
        assert config.timeout_policy.adaptive
        assert config.wait_query_retries == 2
        fixed = ChaosProfile(adaptive=False).protocol_config()
        assert not fixed.timeout_policy.adaptive
        assert fixed.wait_query_retries == 0


class TestChaosWalk:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(SimulationError):
            chaos_walk("no-such-scenario", 0)

    def test_walk_is_deterministic(self):
        assert chaos_walk("pair", 3) == chaos_walk("pair", 3)
        assert chaos_walk("pair", 3) != chaos_walk("pair", 4)

    def test_actions_stay_in_vocabulary_and_order(self):
        for seed in range(8):
            schedule = chaos_walk("transfers", seed, steps=20)
            times = [action.at for action in schedule.actions]
            assert times == sorted(times)
            for action in schedule.actions:
                assert action.kind in FailureAction.KINDS
                if action.kind in FailureAction.VALUED_KINDS:
                    assert action.value >= 1.0

    def test_walks_eventually_use_gray_vocabulary(self):
        kinds = {
            action.kind
            for seed in range(12)
            for action in chaos_walk("transfers", seed, steps=20).actions
        }
        assert kinds & GRAY_KINDS

    def test_never_crashes_every_site(self):
        for seed in range(10):
            schedule = chaos_walk("pair", seed, steps=25)
            down = set()
            total = SCENARIOS["pair"].sites
            for action in schedule.actions:
                if action.kind == "crash":
                    down.add(action.targets[0])
                elif action.kind == "recover":
                    down.discard(action.targets[0])
                assert len(down) < total

    def test_schedule_round_trips_with_values(self):
        schedule = chaos_walk("pair", 5, steps=20)
        restored = Schedule.from_dict(schedule.to_dict())
        assert restored == schedule


class TestCampaign:
    def test_smoke_campaign_is_green(self):
        report = run_campaign(smoke=True, seeds=range(3))
        assert report.ok, report.summary_lines()
        assert report.schedules_run == len(SMOKE_SCENARIOS) * 3
        totals = report.total_stats()
        assert totals["events"] > 0

    def test_runs_are_reproducible(self):
        profile = ChaosProfile()
        schedule = chaos_walk("pair", 2, profile=profile)
        first = run_chaos_schedule(schedule, profile)
        second = run_chaos_schedule(schedule, profile)
        assert first.events_processed == second.events_processed
        assert first.violations == second.violations

    def test_system_factory_applies_profile(self):
        profile = ChaosProfile(loss_probability=0.0, adaptive=True)
        schedule = chaos_walk("pair", 0, profile=profile)
        system = system_factory(profile)(schedule)
        assert system.config.timeout_policy.adaptive
        assert system.config.wait_query_retries == 2


class TestArtifacts:
    def test_artifact_written_and_replayable(self, tmp_path):
        # A chaos artifact must be a self-contained repro case; fake a
        # violating result by writing one directly and replaying it.
        from repro.chaos import _write_chaos_artifact
        from repro.check.explorer import Violation

        profile = ChaosProfile(loss_probability=0.05, adaptive=False)
        schedule = chaos_walk("pair", 4, profile=profile)
        path = _write_chaos_artifact(
            schedule,
            profile,
            [Violation(phase="final", oracle="demo", details="demo")],
            str(tmp_path),
        )
        assert os.path.exists(path)
        data = json.loads(open(path).read())
        assert ChaosProfile.from_dict(data["profile"]) == profile
        assert Schedule.from_dict(data) == schedule
        assert data["violations"][0]["oracle"] == "demo"
        # Replay reconstructs schedule AND profile; on this build the
        # run is clean, so the fake violation does not reappear.
        result = replay_chaos(path)
        assert result.schedule == schedule
        assert result.violations == []


class TestChaosCli:
    def test_smoke_run_reports_green(self, capsys):
        assert main(["chaos", "--smoke", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos schedules" in out
        assert "all oracles passed" in out

    def test_fixed_timeouts_flag(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--smoke",
                    "--seeds",
                    "1",
                    "--fixed-timeouts",
                    "--polyvalue-budget",
                    "2",
                ]
            )
            == 0
        )
        assert "fixed timeouts" in capsys.readouterr().out

    def test_replay_of_artifact(self, capsys, tmp_path):
        from repro.chaos import _write_chaos_artifact
        from repro.check.explorer import Violation

        profile = ChaosProfile()
        schedule = chaos_walk("pair", 1, profile=profile)
        path = _write_chaos_artifact(
            schedule,
            profile,
            [Violation(phase="final", oracle="demo", details="demo")],
            str(tmp_path),
        )
        assert main(["chaos", "--replay", path]) == 0
