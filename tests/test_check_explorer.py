"""Tests for the deterministic schedule explorer (repro.check.explorer)."""

import json

import pytest

from repro.check import (
    Schedule,
    enumerate_small_scope,
    explore,
    load_artifact,
    random_walk,
    replay,
    run_schedule,
)
from repro.check.mutation import _armed, smoke_schedules
from repro.check.scenarios import SCENARIOS, build_scenario
from repro.core.errors import SimulationError
from repro.net.failures import FailureAction


class TestScenarios:
    def test_catalogue(self):
        assert set(SCENARIOS) == {"pair", "transfers", "mixed"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SimulationError):
            build_scenario("nope", seed=0)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_traffic_is_deterministic(self, name):
        first = build_scenario(name, seed=3)
        second = build_scenario(name, seed=3)
        first.run_until(6.0)
        second.run_until(6.0)
        assert first.sim.events_processed == second.sim.events_processed
        assert first.database_state() == second.database_state()
        assert [h.status for h in first.handles] == [
            h.status for h in second.handles
        ]


class TestScheduleGeneration:
    def test_walk_is_seed_deterministic(self):
        assert random_walk("pair", 7) == random_walk("pair", 7)

    def test_walks_differ_across_seeds(self):
        walks = {random_walk("pair", seed).actions for seed in range(12)}
        assert len(walks) > 1

    def test_walk_actions_are_ordered_and_sane(self, repro_seed):
        walk = random_walk("transfers", repro_seed, steps=20)
        times = [action.at for action in walk.actions]
        assert times == sorted(times)
        for action in walk.actions:
            assert action.kind in FailureAction.KINDS

    def test_small_scope_covers_every_site(self):
        schedules = enumerate_small_scope()
        for scenario in ("pair", "transfers"):
            crashed = {
                schedule.actions[0].targets[0]
                for schedule in schedules
                if schedule.scenario == scenario
                and schedule.actions[0].kind == "crash"
            }
            expected = {
                f"site-{i}" for i in range(SCENARIOS[scenario].sites)
            }
            assert crashed == expected


class TestRunSchedule:
    def test_empty_schedule_converges_clean(self):
        result = run_schedule(Schedule(scenario="pair", seed=1, actions=()))
        assert result.ok
        assert result.converged
        assert result.final_verdicts

    def test_crash_schedule_converges_clean(self):
        schedule = Schedule(
            scenario="pair",
            seed=0,
            actions=(
                FailureAction(at=0.05, kind="crash", targets=("site-0",)),
                FailureAction(at=1.0, kind="recover", targets=("site-0",)),
            ),
        )
        result = run_schedule(schedule)
        assert result.ok, [str(v) for v in result.violations]
        assert result.quiescent_checkpoints >= 2

    def test_runs_are_reproducible(self):
        schedule = enumerate_small_scope(("pair",))[5]
        first = run_schedule(schedule)
        second = run_schedule(schedule)
        assert first.events_processed == second.events_processed
        assert first.violations == second.violations

    def test_walk_run_with_session_seed(self, repro_seed):
        result = run_schedule(random_walk("mixed", repro_seed, steps=10))
        assert result.ok, [str(v) for v in result.violations]


class TestArtifacts:
    def test_schedule_json_round_trip(self):
        schedule = random_walk("transfers", 9, steps=15)
        clone = Schedule.from_dict(
            json.loads(json.dumps(schedule.to_dict()))
        )
        assert clone == schedule

    def test_violation_writes_artifact_and_replays(self, tmp_path):
        # Arm a known-bad mutant so a violation is guaranteed, then
        # prove the artifact replays to the identical violation set.
        schedule = _armed(smoke_schedules()[0], "keep-locks")
        result = run_schedule(schedule, artifact_dir=str(tmp_path))
        assert not result.ok
        assert result.artifact_path is not None
        loaded = load_artifact(result.artifact_path)
        assert loaded == schedule
        replayed = replay(result.artifact_path)
        assert replayed.violations == result.violations
        assert replayed.events_processed == result.events_processed

    def test_clean_run_writes_no_artifact(self, tmp_path):
        result = run_schedule(
            Schedule(scenario="pair", seed=2, actions=()),
            artifact_dir=str(tmp_path),
        )
        assert result.ok
        assert result.artifact_path is None
        assert list(tmp_path.iterdir()) == []


class TestExplore:
    def test_small_budget_all_green(self):
        report = explore(
            scenarios=("pair",),
            seeds=range(3),
            steps=6,
            include_enumeration=False,
        )
        assert report.schedules_run == 3
        assert report.ok
        assert report.schedules_per_second > 0
        assert any("schedules explored" in line
                   for line in report.summary_lines())
