"""Tests for the mutation smoke test (repro.check.mutation).

The meta-test of the harness: each deliberately-wrong wait-phase
branch must be caught by at least one oracle, the *expected* oracle
must be among the catchers, and the unmutated protocol must pass the
identical schedules.
"""

import pytest

from repro.check import FAULTS, run_mutation_smoke
from repro.check.mutation import _armed, smoke_schedules
from repro.check.explorer import run_schedule
from repro.txn.config import ProtocolConfig


class TestFaultInjection:
    def test_fault_catalogue(self):
        assert set(FAULTS) == {
            "unilateral-commit", "overlapping-conditions", "keep-locks"
        }

    def test_config_rejects_nothing_but_run_does(self):
        with pytest.raises(ValueError):
            run_mutation_smoke(faults=("no-such-fault",))

    def test_fault_off_by_default(self):
        assert ProtocolConfig().wait_phase_fault is None


@pytest.mark.parametrize(
    "fault,expected_oracle",
    [
        ("unilateral-commit", "serial-equivalence"),
        ("overlapping-conditions", "condition-sets"),
        ("keep-locks", "no-blocking"),
    ],
)
def test_each_fault_caught_by_its_oracle(fault, expected_oracle):
    caught_by = set()
    for schedule in smoke_schedules():
        result = run_schedule(_armed(schedule, fault))
        caught_by.update(v.oracle for v in result.violations)
    assert caught_by, f"{fault} produced no violation at all"
    assert expected_oracle in caught_by, (
        f"{fault} caught by {sorted(caught_by)} but not by the "
        f"expected {expected_oracle}"
    )


def test_full_smoke_report():
    report = run_mutation_smoke()
    assert report.baseline_ok, [str(v) for v in report.baseline_violations]
    assert report.ok
    assert {o.fault for o in report.outcomes} == set(FAULTS)
    for outcome in report.outcomes:
        assert outcome.caught
        assert outcome.oracles_triggered
    lines = report.summary_lines()
    assert any("CAUGHT" in line for line in lines)
    assert not any("NOT CAUGHT" in line for line in lines)
