"""Unit tests for the invariant oracle library (repro.check.oracles)."""

import pytest

from repro.check import (
    ALL_ORACLES,
    CONVERGENCE_ORACLES,
    QUIESCENT_ORACLES,
    CheckContext,
    check_converged,
    check_quiescent,
    failed,
)
from repro.check.oracles import (
    condition_sets_oracle,
    convergence_oracle,
    decision_consistency_oracle,
    figure1_oracle,
    no_blocking_oracle,
    outcome_tracking_oracle,
    serial_equivalence_oracle,
    single_outcome_oracle,
)
from repro.core.conditions import Condition
from repro.core.polyvalue import Polyvalue
from repro.db.locks import LockMode
from repro.txn.config import CommitPolicy, ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus

from tests.conftest import increment, move, run_to_decision


def fresh_system(seed=42, **kwargs):
    items = {f"item-{index}": 100 for index in range(6)}
    return DistributedSystem.build(sites=3, items=items, seed=seed, **kwargs)


def in_doubt_system(seed=42):
    """A system holding genuine polyvalues: coordinator crashed mid-wait."""
    system = fresh_system(seed)
    handle = system.submit(move("item-0", "item-1", 30))
    system.run_for(0.05)
    system.crash_site("site-0")
    system.run_for(2.0)
    return system, handle


class TestCatalogue:
    def test_catalogue_composition(self):
        assert len(QUIESCENT_ORACLES) == 6
        assert len(CONVERGENCE_ORACLES) == 3  # + path-effects (PR 7)
        assert set(ALL_ORACLES) == set(QUIESCENT_ORACLES) | set(
            CONVERGENCE_ORACLES
        )

    def test_every_oracle_named_uniquely(self):
        ctx = CheckContext(system=fresh_system())
        names = [oracle(ctx).oracle for oracle in ALL_ORACLES]
        assert len(names) == len(set(names))


class TestHealthySystems:
    def test_fresh_system_passes_everything(self):
        ctx = CheckContext(system=fresh_system())
        assert failed(check_converged(ctx)) == []

    def test_committed_traffic_passes_everything(self):
        system = fresh_system()
        for index in range(4):
            handle = system.submit(increment(f"item-{index}"))
            run_to_decision(system, handle)
        system.run_for(3.0)
        ctx = CheckContext(system=system)
        assert failed(check_converged(ctx)) == []

    def test_in_doubt_system_passes_quiescent_oracles(self):
        # Polyvalues present, a site down: the structural invariants
        # hold even though convergence has not happened yet.
        system, _ = in_doubt_system()
        assert system.total_polyvalues() > 0
        assert system.run_to_quiescence(max_time=5.0)
        ctx = CheckContext(system=system)
        assert failed(check_quiescent(ctx)) == []

    def test_in_doubt_system_fails_convergence(self):
        system, _ = in_doubt_system()
        ctx = CheckContext(system=system)
        verdict = convergence_oracle(ctx)
        assert not verdict.ok
        assert "down" in verdict.details

    def test_recovery_restores_convergence(self):
        system, handle = in_doubt_system()
        system.recover_site("site-0")
        assert system.settle(max_time=system.sim.now + 60.0, step=0.5)
        ctx = CheckContext(system=system)
        assert failed(check_converged(ctx)) == []
        assert handle.status is not TxnStatus.PENDING


class TestStructuralViolations:
    """Corrupt a live system by hand; the matching oracle must notice."""

    def test_overlapping_conditions_detected(self):
        system, handle = in_doubt_system()
        site = system.sites["site-1"]
        item = site.store.polyvalued_items()[0]
        bad = Polyvalue(
            [(130, Condition.of(handle.txn)), (100, Condition.true())],
            validate=False,
        )
        site.store.write(item, bad)
        ctx = CheckContext(system=system)
        assert not condition_sets_oracle(ctx).ok
        assert not single_outcome_oracle(ctx).ok

    def test_incomplete_conditions_detected(self):
        system, handle = in_doubt_system()
        site = system.sites["site-1"]
        item = site.store.polyvalued_items()[0]
        bad = Polyvalue(
            [(130, Condition.of(handle.txn))], validate=False
        )
        site.store.write(item, bad)
        ctx = CheckContext(system=system)
        verdict = condition_sets_oracle(ctx)
        assert not verdict.ok
        assert item in verdict.details

    def test_untracked_polyvalue_detected(self):
        # A polyvalue whose dependency the outcome table never heard
        # of: the forwarding chain would lose the update.
        system, _ = in_doubt_system()
        site = system.sites["site-1"]
        item = site.store.polyvalued_items()[0]
        site.store.write(item, Polyvalue.in_doubt("T999@site-2", 7, 100))
        ctx = CheckContext(system=system)
        verdict = outcome_tracking_oracle(ctx)
        assert not verdict.ok
        assert "T999@site-2" in verdict.details

    def test_lock_on_polyvalued_item_detected(self):
        system, _ = in_doubt_system()
        site = system.sites["site-1"]
        item = site.store.polyvalued_items()[0]
        site.runtime.locks.acquire("T999@site-1", item, LockMode.WRITE)
        ctx = CheckContext(system=system)
        verdict = no_blocking_oracle(ctx)
        assert not verdict.ok
        assert item in verdict.details

    def test_no_blocking_skips_blocking_policy(self):
        # The BLOCKING baseline legitimately holds locks across the
        # window — the oracle must not flag the contrast the paper
        # itself draws.
        system = fresh_system(
            config=ProtocolConfig(policy=CommitPolicy.BLOCKING)
        )
        ctx = CheckContext(system=system)
        verdict = no_blocking_oracle(ctx)
        assert verdict.ok
        assert "skipped" in verdict.details

    def test_figure1_oracle_accepts_real_history(self):
        system, _ = in_doubt_system()
        assert figure1_oracle(CheckContext(system=system)).ok

    def test_decision_consistency_on_real_history(self):
        system, handle = in_doubt_system()
        system.recover_site("site-0")
        system.settle(max_time=system.sim.now + 60.0, step=0.5)
        assert decision_consistency_oracle(CheckContext(system=system)).ok


class TestSerialEquivalence:
    def test_passes_on_committed_transfers(self):
        system = fresh_system()
        for source, target in (("item-0", "item-1"), ("item-2", "item-3")):
            run_to_decision(system, system.submit(move(source, target, 10)))
        system.run_for(2.0)
        assert serial_equivalence_oracle(CheckContext(system=system)).ok

    def test_detects_phantom_effect(self):
        # Simulate a lost update by corrupting the final state.
        system = fresh_system()
        handle = system.submit(move("item-0", "item-1", 10))
        run_to_decision(system, handle)
        system.run_for(2.0)
        system.sites["site-0"].store.write("item-0", 55555)
        verdict = serial_equivalence_oracle(CheckContext(system=system))
        assert not verdict.ok
        assert "item-0" in verdict.details

    def test_initial_values_override(self):
        system = fresh_system()
        ctx = CheckContext(
            system=system,
            initial_values={item: 0 for item in system.initial_values},
        )
        # Replaying nothing against all-zero initials cannot match the
        # all-100 database.
        assert not serial_equivalence_oracle(ctx).ok
