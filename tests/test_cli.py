"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestTable1:
    def test_prints_all_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "1.01" in out
        assert "50.51" in out
        assert out.count("\n") >= 12


class TestTable2:
    def test_runs_quick(self, capsys):
        assert main(["table2", "--duration", "500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "paper pred" in out

    def test_deterministic(self, capsys):
        main(["table2", "--duration", "500", "--seed", "3"])
        first = capsys.readouterr().out
        main(["table2", "--duration", "500", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestModel:
    def test_default_is_typical_database(self, capsys):
        assert main(["model"]) == 0
        out = capsys.readouterr().out
        assert "1.0101" in out
        assert "decay rate" in out

    def test_custom_parameters(self, capsys):
        assert main(["model", "-u", "100"]) == 0
        out = capsys.readouterr().out
        assert "11.1111" in out

    def test_unstable_regime_reports_error(self, capsys):
        code = main(["model", "-u", "1000", "-d", "10", "-i", "1000"])
        assert code == 1
        assert "UNSTABLE" in capsys.readouterr().out


class TestSimulate:
    def test_runs(self, capsys):
        code = main([
            "simulate", "-i", "10000", "-f", "0.01", "-r", "0.01",
            "--duration", "500", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean polyvalues" in out
        assert "model prediction" in out


class TestSweep:
    def test_model_only_sweep(self, capsys):
        code = main([
            "sweep", "-p", "updates_per_second", "-v", "10,100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1.010" in out
        assert "11.111" in out

    def test_sweep_with_simulation(self, capsys):
        code = main([
            "sweep", "-p", "updates_per_second", "-v", "5",
            "-i", "10000", "-f", "0.01", "-r", "0.01",
            "--simulate", "--duration", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Simulation column populated (not "-").
        data_line = out.strip().splitlines()[-1]
        assert not data_line.endswith("-")

    def test_bad_values_rejected(self, capsys):
        code = main(["sweep", "-p", "items", "-v", "10,zebra"])
        assert code == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_unknown_parameter_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "-p", "bogus", "-v", "1"])


class TestDemo:
    def test_walkthrough(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "in-doubt window hit" in out
        assert "after recovery" in out
        # The polyvalue is visible mid-demo...
        assert "T1@site-0" in out
        # ...and resolved at the end (presumed abort restores 100).
        assert "'bob': 100" in out


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"


class TestReport:
    def test_table_format(self, capsys):
        assert main(["report", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "submitted" in out
        assert "repro_commit_latency_seconds" in out
        assert "p95" in out

    def test_prometheus_format(self, capsys):
        assert main(["report", "--seed", "7", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_commit_latency_seconds histogram" in out
        assert "repro_commit_latency_seconds_bucket" in out
        assert 'le="+Inf"' in out

    def test_json_format(self, capsys):
        import json

        assert main(["report", "--seed", "7", "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["submitted"] == 4
        assert summary["committed"] == 3

    def test_deterministic(self, capsys):
        main(["report", "--seed", "7", "--format", "prometheus"])
        first = capsys.readouterr().out
        main(["report", "--seed", "7", "--format", "prometheus"])
        second = capsys.readouterr().out
        assert first == second


class TestTrace:
    def test_span_tree_covers_in_doubt_window(self, capsys):
        assert main(["trace", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "txn:T1@site-0" in out
        assert "phase:read" in out
        assert "wait@site-1" in out
        # The induced in-doubt window is present, closed (a duration is
        # printed, not "(open)"), and resolved to the presumed abort.
        window_lines = [
            line for line in out.splitlines() if "in-doubt@site-1" in line
        ]
        assert window_lines
        assert "(open)" not in window_lines[0]
        assert "committed=False" in window_lines[0]

    def test_txn_filter(self, capsys):
        assert main(["trace", "--seed", "7", "--txn", "T1@site-2"]) == 0
        out = capsys.readouterr().out
        assert "txn:T1@site-2" in out
        assert "txn:T1@site-0" not in out


class TestEvents:
    def test_jsonl_output(self, capsys):
        import json

        assert main(["events", "--seed", "7"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        names = {record["name"] for record in records}
        assert "txn.submitted" in names
        assert "indoubt.open" in names
        assert "msg.drop" in names

    def test_txn_filter(self, capsys):
        import json

        assert main(["events", "--seed", "7", "--txn", "T1@site-0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all(
            json.loads(line)["txn"] == "T1@site-0" for line in lines
        )


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entrypoint_exists(self):
        import repro.__main__  # noqa: F401 - imported for side-effect check
