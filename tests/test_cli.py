"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestTable1:
    def test_prints_all_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "1.01" in out
        assert "50.51" in out
        assert out.count("\n") >= 12


class TestTable2:
    def test_runs_quick(self, capsys):
        assert main(["table2", "--duration", "500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "paper pred" in out

    def test_deterministic(self, capsys):
        main(["table2", "--duration", "500", "--seed", "3"])
        first = capsys.readouterr().out
        main(["table2", "--duration", "500", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestModel:
    def test_default_is_typical_database(self, capsys):
        assert main(["model"]) == 0
        out = capsys.readouterr().out
        assert "1.0101" in out
        assert "decay rate" in out

    def test_custom_parameters(self, capsys):
        assert main(["model", "-u", "100"]) == 0
        out = capsys.readouterr().out
        assert "11.1111" in out

    def test_unstable_regime_reports_error(self, capsys):
        code = main(["model", "-u", "1000", "-d", "10", "-i", "1000"])
        assert code == 1
        assert "UNSTABLE" in capsys.readouterr().out


class TestSimulate:
    def test_runs(self, capsys):
        code = main([
            "simulate", "-i", "10000", "-f", "0.01", "-r", "0.01",
            "--duration", "500", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean polyvalues" in out
        assert "model prediction" in out


class TestSweep:
    def test_model_only_sweep(self, capsys):
        code = main([
            "sweep", "-p", "updates_per_second", "-v", "10,100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1.010" in out
        assert "11.111" in out

    def test_sweep_with_simulation(self, capsys):
        code = main([
            "sweep", "-p", "updates_per_second", "-v", "5",
            "-i", "10000", "-f", "0.01", "-r", "0.01",
            "--simulate", "--duration", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Simulation column populated (not "-").
        data_line = out.strip().splitlines()[-1]
        assert not data_line.endswith("-")

    def test_bad_values_rejected(self, capsys):
        code = main(["sweep", "-p", "items", "-v", "10,zebra"])
        assert code == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_unknown_parameter_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "-p", "bogus", "-v", "1"])


class TestDemo:
    def test_walkthrough(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "in-doubt window hit" in out
        assert "after recovery" in out
        # The polyvalue is visible mid-demo...
        assert "T1@site-0" in out
        # ...and resolved at the end (presumed abort restores 100).
        assert "'bob': 100" in out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entrypoint_exists(self):
        import repro.__main__  # noqa: F401 - imported for side-effect check
