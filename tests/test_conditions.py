"""Unit tests for the condition algebra (repro.core.conditions)."""

import pytest

from repro.core.conditions import (
    FALSE,
    TRUE,
    Condition,
    Literal,
    conditions_are_complete,
    conditions_are_complete_and_disjoint,
    conditions_are_disjoint,
)
from repro.core.errors import ConditionError


class TestLiteral:
    def test_positive_literal_str(self):
        assert str(Literal("T1", True)) == "T1"

    def test_negative_literal_str(self):
        assert str(Literal("T1", False)) == "~T1"

    def test_negate_flips_polarity(self):
        assert Literal("T1", True).negate() == Literal("T1", False)

    def test_negate_is_involution(self):
        literal = Literal("T9", False)
        assert literal.negate().negate() == literal

    def test_satisfied_by_matching_outcome(self):
        assert Literal("T1", True).satisfied_by({"T1": True})
        assert not Literal("T1", True).satisfied_by({"T1": False})

    def test_negative_literal_satisfied_by_abort(self):
        assert Literal("T1", False).satisfied_by({"T1": False})

    def test_satisfied_by_missing_txn_raises(self):
        with pytest.raises(ConditionError):
            Literal("T1", True).satisfied_by({"T2": True})

    def test_literals_are_hashable_and_ordered(self):
        literals = {Literal("T1"), Literal("T1"), Literal("T2")}
        assert len(literals) == 2
        assert sorted([Literal("T2"), Literal("T1")])[0].txn == "T1"


class TestConstructors:
    def test_true_is_true(self):
        assert TRUE.is_true()
        assert not TRUE.is_false()

    def test_false_is_false(self):
        assert FALSE.is_false()
        assert not FALSE.is_true()

    def test_of_mentions_single_variable(self):
        assert Condition.of("T1").variables() == frozenset({"T1"})

    def test_not_of_is_negative_literal(self):
        condition = Condition.not_of("T1")
        assert condition.evaluate({"T1": False})
        assert not condition.evaluate({"T1": True})

    def test_literal_constructor_polarity(self):
        assert Condition.literal("T1", True) == Condition.of("T1")
        assert Condition.literal("T1", False) == Condition.not_of("T1")

    def test_all_of_requires_every_txn(self):
        condition = Condition.all_of("T1", "T2")
        assert condition.evaluate({"T1": True, "T2": True})
        assert not condition.evaluate({"T1": True, "T2": False})

    def test_any_of_requires_at_least_one(self):
        condition = Condition.any_of("T1", "T2")
        assert condition.evaluate({"T1": False, "T2": True})
        assert not condition.evaluate({"T1": False, "T2": False})

    def test_paper_example_t1_and_t2_or_t3(self):
        # "the condition T1 (T2 T3) would be true if T1 and at least
        # one of T2 and T3 were completed"
        condition = Condition.of("T1") & Condition.any_of("T2", "T3")
        assert condition.evaluate({"T1": True, "T2": False, "T3": True})
        assert condition.evaluate({"T1": True, "T2": True, "T3": False})
        assert not condition.evaluate({"T1": False, "T2": True, "T3": True})
        assert not condition.evaluate({"T1": True, "T2": False, "T3": False})


class TestAlgebra:
    def test_and_with_true_is_identity(self):
        c = Condition.of("T1")
        assert (c & TRUE) == c
        assert (TRUE & c) == c

    def test_and_with_false_is_false(self):
        assert (Condition.of("T1") & FALSE).is_false()

    def test_or_with_false_is_identity(self):
        c = Condition.of("T1")
        assert (c | FALSE) == c

    def test_or_with_true_is_true(self):
        assert (Condition.of("T1") | TRUE).is_true()

    def test_contradiction_is_false(self):
        assert (Condition.of("T1") & Condition.not_of("T1")).is_false()

    def test_excluded_middle_is_true(self):
        assert (Condition.of("T1") | Condition.not_of("T1")).is_true()

    def test_and_is_idempotent(self):
        c = Condition.of("T1") & Condition.not_of("T2")
        assert (c & c) == c

    def test_or_is_idempotent(self):
        c = Condition.of("T1") & Condition.not_of("T2")
        assert (c | c) == c

    def test_absorption_removes_subsumed_product(self):
        t1 = Condition.of("T1")
        t1_and_t2 = t1 & Condition.of("T2")
        assert (t1 | t1_and_t2) == t1

    def test_de_morgan_negation_of_conjunction(self):
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        assert (~(t1 & t2)).equivalent(~t1 | ~t2)

    def test_de_morgan_negation_of_disjunction(self):
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        assert (~(t1 | t2)).equivalent(~t1 & ~t2)

    def test_double_negation(self):
        c = Condition.of("T1") & Condition.not_of("T2")
        assert (~~c).equivalent(c)

    def test_negation_of_true_is_false(self):
        assert (~TRUE).is_false()

    def test_negation_of_false_is_true(self):
        assert (~FALSE).is_true()

    def test_resolution_collapses_complementary_pair(self):
        # p·T + p·~T = p
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        combined = (t2 & t1) | (t2 & ~t1)
        assert combined == t2

    def test_and_with_non_condition_returns_notimplemented(self):
        with pytest.raises(TypeError):
            Condition.of("T1") & 42


class TestSubstitute:
    def test_substitute_commit_makes_positive_true(self):
        assert Condition.of("T1").substitute({"T1": True}).is_true()

    def test_substitute_abort_makes_positive_false(self):
        assert Condition.of("T1").substitute({"T1": False}).is_false()

    def test_substitute_partial_leaves_remaining(self):
        condition = Condition.of("T1") & Condition.of("T2")
        reduced = condition.substitute({"T1": True})
        assert reduced == Condition.of("T2")

    def test_substitute_unrelated_txn_is_noop(self):
        condition = Condition.of("T1")
        assert condition.substitute({"T9": False}) == condition

    def test_substitute_across_products(self):
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        condition = (t1 & t2) | (~t1 & ~t2)
        assert condition.substitute({"T1": True}) == t2
        assert condition.substitute({"T1": False}) == ~t2

    def test_substitute_empty_mapping_is_noop(self):
        condition = Condition.of("T1") | Condition.of("T2")
        assert condition.substitute({}) == condition


class TestSemantics:
    def test_tautology_detection(self):
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        tautology = (t1 & t2) | ~t1 | (t1 & ~t2)
        assert tautology.is_tautology()

    def test_non_tautology(self):
        assert not Condition.of("T1").is_tautology()

    def test_satisfiable_simple(self):
        assert Condition.of("T1").is_satisfiable()
        assert not FALSE.is_satisfiable()

    def test_equivalent_syntactic_variants(self):
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        assert (t1 & t2).equivalent(t2 & t1)
        assert (t1 | t2).equivalent(~(~t1 & ~t2))

    def test_not_equivalent(self):
        assert not Condition.of("T1").equivalent(Condition.of("T2"))

    def test_implies(self):
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        assert (t1 & t2).implies(t1)
        assert not t1.implies(t1 & t2)

    def test_everything_implies_true(self):
        assert Condition.of("T1").implies(TRUE)

    def test_false_implies_everything(self):
        assert FALSE.implies(Condition.of("T1"))

    def test_disjoint_with(self):
        t1 = Condition.of("T1")
        assert t1.disjoint_with(~t1)
        assert not t1.disjoint_with(t1 | Condition.of("T2"))

    def test_evaluate_with_extra_assignments(self):
        condition = Condition.of("T1")
        assert condition.evaluate({"T1": True, "T2": False})


class TestWellFormedness:
    def test_pair_t_and_not_t_is_complete_and_disjoint(self):
        pair = [Condition.of("T1"), Condition.not_of("T1")]
        assert conditions_are_complete(pair)
        assert conditions_are_disjoint(pair)
        assert conditions_are_complete_and_disjoint(pair)

    def test_overlapping_pair_not_disjoint(self):
        overlapping = [Condition.of("T1"), TRUE]
        assert conditions_are_complete(overlapping)
        assert not conditions_are_disjoint(overlapping)

    def test_gappy_pair_not_complete(self):
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        gappy = [t1 & t2, ~t1 & ~t2]
        assert conditions_are_disjoint(gappy)
        assert not conditions_are_complete(gappy)

    def test_three_way_partition(self):
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        partition = [t1 & t2, t1 & ~t2, ~t1]
        assert conditions_are_complete_and_disjoint(partition)

    def test_single_true_condition(self):
        assert conditions_are_complete_and_disjoint([TRUE])

    def test_truth_table_limit_enforced(self):
        big = Condition.all_of(*(f"T{i}" for i in range(25)))
        with pytest.raises(ConditionError):
            big.is_tautology()


class TestPresentation:
    def test_true_renders_as_true(self):
        assert str(TRUE) == "TRUE"

    def test_false_renders_as_false(self):
        assert str(FALSE) == "FALSE"

    def test_single_product_renders_with_ampersand(self):
        condition = Condition.of("T1") & Condition.not_of("T2")
        assert str(condition) == "T1 & ~T2"

    def test_str_is_deterministic(self):
        t1, t2, t3 = (Condition.of(t) for t in ("T1", "T2", "T3"))
        a = (t1 & ~t2) | t3
        b = t3 | (t1 & ~t2)
        assert str(a) == str(b)

    def test_repr_contains_str(self):
        condition = Condition.of("T1")
        assert "T1" in repr(condition)


class TestHashing:
    def test_equal_conditions_hash_equal(self):
        t1, t2 = Condition.of("T1"), Condition.of("T2")
        assert hash(t1 & t2) == hash(t2 & t1)

    def test_usable_as_dict_key(self):
        t1 = Condition.of("T1")
        mapping = {t1: "a", ~t1: "b"}
        assert mapping[Condition.of("T1")] == "a"

    def test_equality_with_other_type_is_false(self):
        assert Condition.of("T1") != "T1"
