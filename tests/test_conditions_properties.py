"""Property-based tests (hypothesis) for the condition algebra.

These verify that the simplification done by the Condition constructor
and operators is *semantics-preserving*: whatever structural rewriting
happens (contradiction removal, absorption, resolution), the predicate
must agree with a naive evaluation under every assignment.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import conditions
from repro.core.conditions import Condition, Literal

TXNS = ["T1", "T2", "T3", "T4"]

literals = st.builds(
    Literal,
    txn=st.sampled_from(TXNS),
    positive=st.booleans(),
)

products = st.frozensets(literals, min_size=0, max_size=4)

raw_conditions = st.lists(products, min_size=0, max_size=5)


def build(products_list):
    return Condition(products_list)


def naive_evaluate(products_list, assignment):
    """Evaluate the raw sum-of-products without any simplification."""
    return any(
        all(assignment[lit.txn] == lit.positive for lit in product)
        for product in products_list
    )


def all_assignments():
    for values in itertools.product((False, True), repeat=len(TXNS)):
        yield dict(zip(TXNS, values))


@given(raw_conditions)
def test_construction_preserves_semantics(products_list):
    condition = build(products_list)
    for assignment in all_assignments():
        assert condition.evaluate(assignment) == naive_evaluate(
            products_list, assignment
        )


@given(raw_conditions, raw_conditions)
def test_and_matches_pointwise_conjunction(left, right):
    combined = build(left) & build(right)
    for assignment in all_assignments():
        expected = naive_evaluate(left, assignment) and naive_evaluate(
            right, assignment
        )
        assert combined.evaluate(assignment) == expected


@given(raw_conditions, raw_conditions)
def test_or_matches_pointwise_disjunction(left, right):
    combined = build(left) | build(right)
    for assignment in all_assignments():
        expected = naive_evaluate(left, assignment) or naive_evaluate(
            right, assignment
        )
        assert combined.evaluate(assignment) == expected


@given(raw_conditions)
@settings(max_examples=60)
def test_negation_matches_pointwise_complement(products_list):
    negated = ~build(products_list)
    for assignment in all_assignments():
        assert negated.evaluate(assignment) != naive_evaluate(
            products_list, assignment
        )


@given(raw_conditions)
@settings(max_examples=60)
def test_excluded_middle_with_self(products_list):
    condition = build(products_list)
    union = condition | ~condition
    assert union.is_tautology()
    intersection = condition & ~condition
    assert not intersection.is_satisfiable()


@given(raw_conditions, st.sampled_from(TXNS), st.booleans())
def test_substitution_agrees_with_restricted_evaluation(
    products_list, txn, outcome
):
    condition = build(products_list)
    reduced = condition.substitute({txn: outcome})
    for assignment in all_assignments():
        forced = dict(assignment)
        forced[txn] = outcome
        assert reduced.evaluate(assignment) == condition.evaluate(forced)


@given(raw_conditions)
def test_simplified_form_has_no_contradictory_products(products_list):
    condition = build(products_list)
    for product in condition.products:
        txns_seen = {}
        for literal in product:
            assert txns_seen.setdefault(literal.txn, literal.positive) == (
                literal.positive
            )


@given(raw_conditions)
def test_no_product_subsumes_another(products_list):
    condition = build(products_list)
    product_list = list(condition.products)
    for i, a in enumerate(product_list):
        for j, b in enumerate(product_list):
            if i != j:
                assert not a < b


@given(raw_conditions, raw_conditions)
@settings(max_examples=60)
def test_equivalent_is_symmetric(left, right):
    a, b = build(left), build(right)
    assert a.equivalent(b) == b.equivalent(a)


@given(raw_conditions)
def test_structural_equality_implies_equal_hash(products_list):
    a = build(products_list)
    b = build(list(products_list))
    assert a == b
    assert hash(a) == hash(b)


# ----------------------------------------------------------------------
# Interning and memoization (the performance layer)
# ----------------------------------------------------------------------
#
# The Condition constructor hash-conses: structurally equal conditions
# are the *same object*, and the algebra is memoized on those interned
# identities.  None of that may change observable behaviour — the
# properties below run every operation twice, once with the caches as
# configured and once with memoization disabled (``configure_caches(0)``
# turns every lru_cache off while keeping the weak intern table), and
# demand identical answers.


@given(raw_conditions)
@settings(max_examples=60)
def test_interning_yields_identical_objects(products_list):
    a = build(products_list)
    b = build(list(products_list))
    assert a is b


def _products_canonical(condition):
    # str(frozenset) is not canonical (iteration order differs between
    # equal frozensets built in different orders), so sort the literals
    # inside each product before sorting the products.
    return sorted(
        "&".join(sorted(map(str, product))) for product in condition.products
    )


def _algebra_snapshot(left, right):
    """Every observable product of the algebra on a pair of conditions."""
    a, b = build(left), build(right)
    reduced = (a & b).substitute({"T1": True, "T3": False})
    return {
        "and": _products_canonical(a & b),
        "or": _products_canonical(a | b),
        "not": _products_canonical(~a),
        "substitute": _products_canonical(reduced),
        "variables": sorted(a.variables() | b.variables()),
        "satisfiable": (a & b).is_satisfiable(),
        "tautology": (a | ~a).is_tautology(),
        "evaluations": [
            (a & b).evaluate(assignment) for assignment in all_assignments()
        ],
    }


@given(raw_conditions, raw_conditions)
@settings(max_examples=60)
def test_cached_algebra_observationally_identical_to_uncached(left, right):
    cached = _algebra_snapshot(left, right)
    conditions.configure_caches(0)
    try:
        uncached = _algebra_snapshot(left, right)
    finally:
        conditions.configure_caches()
    assert cached == uncached


@given(raw_conditions, st.booleans())
@settings(max_examples=60)
def test_interning_never_leaks_across_txnid_spaces(products_list, outcome):
    """Conditions over one TxnId space are inert under another space.

    The memoized ``substitute`` is keyed on the outcomes *restricted to
    the condition's own variables*, so outcomes for foreign transaction
    identifiers must neither change the result nor smuggle foreign
    variables into it.
    """
    condition = build(products_list)
    foreign = {"U1": outcome, "U2": not outcome}
    # Substituting outcomes from a disjoint TxnId space is an identity —
    # literally: the fast path returns the very same interned object.
    assert condition.substitute(foreign) is condition
    # Mixing foreign outcomes into a relevant substitution changes
    # nothing relative to the restricted substitution.
    mixed = condition.substitute({"T1": outcome, **foreign})
    assert mixed is condition.substitute({"T1": outcome})
    # And no operation ever invents variables from the foreign space.
    assert not (condition.variables() & set(foreign))
    assert not ((~condition).variables() & set(foreign))


@given(raw_conditions)
@settings(max_examples=60)
def test_cache_reconfiguration_preserves_identity_of_live_conditions(
    products_list,
):
    """Clearing/resizing the memoization caches must not break interning:
    a condition rebuilt after ``clear_caches`` is still the same object
    as its live predecessor (the intern table is weak, not an lru_cache).
    """
    before = build(products_list)
    conditions.clear_caches()
    after = build(list(products_list))
    assert after is before
