"""Property-based tests (hypothesis) for the condition algebra.

These verify that the simplification done by the Condition constructor
and operators is *semantics-preserving*: whatever structural rewriting
happens (contradiction removal, absorption, resolution), the predicate
must agree with a naive evaluation under every assignment.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import Condition, Literal

TXNS = ["T1", "T2", "T3", "T4"]

literals = st.builds(
    Literal,
    txn=st.sampled_from(TXNS),
    positive=st.booleans(),
)

products = st.frozensets(literals, min_size=0, max_size=4)

raw_conditions = st.lists(products, min_size=0, max_size=5)


def build(products_list):
    return Condition(products_list)


def naive_evaluate(products_list, assignment):
    """Evaluate the raw sum-of-products without any simplification."""
    return any(
        all(assignment[lit.txn] == lit.positive for lit in product)
        for product in products_list
    )


def all_assignments():
    for values in itertools.product((False, True), repeat=len(TXNS)):
        yield dict(zip(TXNS, values))


@given(raw_conditions)
def test_construction_preserves_semantics(products_list):
    condition = build(products_list)
    for assignment in all_assignments():
        assert condition.evaluate(assignment) == naive_evaluate(
            products_list, assignment
        )


@given(raw_conditions, raw_conditions)
def test_and_matches_pointwise_conjunction(left, right):
    combined = build(left) & build(right)
    for assignment in all_assignments():
        expected = naive_evaluate(left, assignment) and naive_evaluate(
            right, assignment
        )
        assert combined.evaluate(assignment) == expected


@given(raw_conditions, raw_conditions)
def test_or_matches_pointwise_disjunction(left, right):
    combined = build(left) | build(right)
    for assignment in all_assignments():
        expected = naive_evaluate(left, assignment) or naive_evaluate(
            right, assignment
        )
        assert combined.evaluate(assignment) == expected


@given(raw_conditions)
@settings(max_examples=60)
def test_negation_matches_pointwise_complement(products_list):
    negated = ~build(products_list)
    for assignment in all_assignments():
        assert negated.evaluate(assignment) != naive_evaluate(
            products_list, assignment
        )


@given(raw_conditions)
@settings(max_examples=60)
def test_excluded_middle_with_self(products_list):
    condition = build(products_list)
    union = condition | ~condition
    assert union.is_tautology()
    intersection = condition & ~condition
    assert not intersection.is_satisfiable()


@given(raw_conditions, st.sampled_from(TXNS), st.booleans())
def test_substitution_agrees_with_restricted_evaluation(
    products_list, txn, outcome
):
    condition = build(products_list)
    reduced = condition.substitute({txn: outcome})
    for assignment in all_assignments():
        forced = dict(assignment)
        forced[txn] = outcome
        assert reduced.evaluate(assignment) == condition.evaluate(forced)


@given(raw_conditions)
def test_simplified_form_has_no_contradictory_products(products_list):
    condition = build(products_list)
    for product in condition.products:
        txns_seen = {}
        for literal in product:
            assert txns_seen.setdefault(literal.txn, literal.positive) == (
                literal.positive
            )


@given(raw_conditions)
def test_no_product_subsumes_another(products_list):
    condition = build(products_list)
    product_list = list(condition.products)
    for i, a in enumerate(product_list):
        for j, b in enumerate(product_list):
            if i != j:
                assert not a < b


@given(raw_conditions, raw_conditions)
@settings(max_examples=60)
def test_equivalent_is_symmetric(left, right):
    a, b = build(left), build(right)
    assert a.equivalent(b) == b.equivalent(a)


@given(raw_conditions)
def test_structural_equality_implies_equal_hash(products_list):
    a = build(products_list)
    b = build(list(products_list))
    assert a == b
    assert hash(a) == hash(b)
