"""Edge-case unit tests for the coordinator role (repro.txn.coordinator)."""

import pytest

from repro.net.message import Envelope
from repro.txn import protocol
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus

from tests.conftest import increment, move, run_to_decision


def build(seed=17):
    return DistributedSystem.build(
        sites=3,
        items={"a": 10, "b": 20, "c": 30},
        seed=seed,
        jitter=0.0,
    )


def inject(system, sender, recipient, payload):
    system.sites[recipient].on_message(
        Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            sent_at=system.sim.now,
        )
    )


class TestReadPhase:
    def test_duplicate_read_reply_ignored(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        system.run_for(0.021)  # replies just delivered; staging begun
        inject(
            system,
            "site-1",
            "site-0",
            protocol.ReadReply(
                txn=handle.txn, site="site-1", ok=True, values={"b": 999}
            ),
        )
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("b") == 21  # the late 999 never entered

    def test_read_reply_for_unknown_txn_ignored(self):
        system = build()
        inject(
            system,
            "site-1",
            "site-0",
            protocol.ReadReply(txn="T99@site-0", site="site-1", ok=True, values={}),
        )
        system.run_for(0.5)

    def test_read_reply_from_uninvolved_site_ignored(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        system.run_for(0.001)
        inject(
            system,
            "site-2",
            "site-0",
            protocol.ReadReply(
                txn=handle.txn, site="site-2", ok=True, values={"c": 1}
            ),
        )
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED

    def test_negative_read_reply_aborts_immediately(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        system.run_for(0.001)
        inject(
            system,
            "site-1",
            "site-0",
            protocol.ReadReply(
                txn=handle.txn,
                site="site-1",
                ok=False,
                reason="synthetic conflict",
            ),
        )
        assert handle.status is TxnStatus.ABORTED
        assert "synthetic conflict" in handle.abort_reason


class TestStagePhase:
    def test_duplicate_ready_does_not_double_commit(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        run_to_decision(system, handle)
        inject(
            system,
            "site-1",
            "site-0",
            protocol.Ready(txn=handle.txn, site="site-1"),
        )
        system.run_for(0.5)
        assert handle.status is TxnStatus.COMMITTED
        assert system.metrics.committed == 1

    def test_refuse_after_decision_ignored(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        run_to_decision(system, handle)
        inject(
            system,
            "site-1",
            "site-0",
            protocol.Refuse(txn=handle.txn, site="site-1", reason="late"),
        )
        system.run_for(0.5)
        assert handle.status is TxnStatus.COMMITTED

    def test_ready_from_unexpected_site_does_not_complete_early(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        system.run_for(0.031)  # staging just requested
        inject(
            system,
            "site-2",
            "site-0",
            protocol.Ready(txn=handle.txn, site="site-2"),
        )
        # site-2 is not involved; awaiting must still contain the real
        # participants, so no premature decision.
        assert handle.status is TxnStatus.PENDING
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED


class TestDecisionBookkeeping:
    def test_active_set_empties_after_decision(self):
        system = build()
        handle = system.submit(increment("a"))
        run_to_decision(system, handle)
        assert system.sites["site-0"].coordinator.active_transactions() == set()

    def test_sequential_txn_ids_are_unique(self):
        system = build()
        ids = set()
        for _ in range(5):
            handle = system.submit(increment("a"))
            run_to_decision(system, handle)
            ids.add(handle.txn)
        assert len(ids) == 5

    def test_concurrent_coordinators_independent_id_spaces(self):
        system = build()
        first = system.submit(increment("a"), at="site-0")
        second = system.submit(increment("b"), at="site-1")
        run_to_decision(system, first)
        run_to_decision(system, second)
        assert first.txn != second.txn
        assert first.txn.endswith("@site-0")
        assert second.txn.endswith("@site-1")

    def test_crash_returns_undecided_handles_only(self):
        system = build()
        decided = system.submit(increment("a"))
        run_to_decision(system, decided)
        pending = system.submit(move("a", "b", 1))
        system.run_for(0.005)
        undecided = system.sites["site-0"].coordinator.on_crash()
        assert undecided == [pending]
