"""Tests for cost accounting (repro.analysis.cost)."""

import pytest

from repro.analysis.cost import (
    measure_processing,
    measure_storage,
    predicted_storage_fraction,
)
from repro.analysis.model import TYPICAL
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TxnStatus

from tests.conftest import increment, move, run_to_decision


def system_with_doubt(seed=42):
    system = DistributedSystem.build(
        sites=3,
        items={f"item-{index}": 100 for index in range(6)},
        seed=seed,
        jitter=0.0,
    )
    system.submit(move("item-0", "item-1", 30))
    system.run_for(0.035)
    system.crash_site("site-0")
    system.run_for(1.5)
    return system


class TestStorage:
    def test_clean_system_has_no_overhead(self):
        system = DistributedSystem.build(
            sites=2, items={"a": 1, "b": 2}, seed=0
        )
        report = measure_storage(system)
        assert report.polyvalued_items == 0
        assert report.total_items == 2
        assert report.extra_bytes == 0
        assert report.mean_pairs is None
        assert report.polyvalue_fraction == 0.0

    def test_in_doubt_item_measured(self):
        system = system_with_doubt()
        report = measure_storage(system)
        assert report.polyvalued_items == 1
        size = report.sizes[0]
        assert size.pairs == 2
        assert size.depends_on == 1
        assert size.literals == 2  # T and ~T
        assert size.encoded_bytes > size.plain_bytes
        assert report.extra_bytes > 0

    def test_outcome_bookkeeping_counted(self):
        system = system_with_doubt()
        report = measure_storage(system)
        assert report.outcome_table_entries >= 1

    def test_compound_uncertainty_grows_pairs(self):
        system = system_with_doubt()
        # A second in-doubt transaction over the same item.
        system.submit(move("item-2", "item-1", 7), at="site-2")
        system.run_for(0.035)
        system.crash_site("site-2")
        system.run_for(1.5)
        report = measure_storage(system)
        assert report.max_pairs == 4  # 2 x 2 combinations

    def test_overhead_vanishes_after_recovery(self):
        system = system_with_doubt()
        system.recover_site("site-0")
        system.run_for(6.0)
        report = measure_storage(system)
        assert report.polyvalued_items == 0
        assert report.outcome_table_entries == 0
        assert report.extra_bytes == 0


class TestProcessing:
    def test_no_polytransactions_no_fanout(self):
        system = DistributedSystem.build(
            sites=2, items={"a": 1, "b": 2}, seed=0
        )
        handle = system.submit(increment("a"))
        run_to_decision(system, handle)
        report = measure_processing(system)
        assert report.polytransactions == 0
        assert report.mean_fanout is None
        assert report.extra_executions == 0

    def test_polytransaction_fanout_recorded(self):
        system = system_with_doubt()
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        report = measure_processing(system)
        assert report.polytransactions == 1
        assert report.total_fanout == 2
        assert report.mean_fanout == 2.0
        assert report.extra_executions == 1
        assert report.max_fanout == 2

    def test_fraction_over_decided(self):
        system = system_with_doubt()
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        handle = system.submit(increment("item-4"), at="site-1")
        run_to_decision(system, handle)
        report = measure_processing(system)
        assert 0 < report.polytransaction_fraction < 1


class TestPrediction:
    def test_typical_database_overhead_is_tiny(self):
        fraction = predicted_storage_fraction(TYPICAL)
        # ~1 polyvalue per million items, one extra value each.
        assert fraction == pytest.approx(1.01e-6, rel=0.01)

    def test_scales_with_pairs(self):
        double = predicted_storage_fraction(TYPICAL, pairs_per_polyvalue=3.0)
        single = predicted_storage_fraction(TYPICAL, pairs_per_polyvalue=2.0)
        assert double == pytest.approx(2 * single)
