"""Deep uncertainty chains: many stacked in-doubt transactions.

The paper's regime is "a few polyvalues at a time", but the data
structures must stay correct (and affordable) well past it.  These
tests stack many in-doubt updates onto one item and check growth
shape, stepwise resolution in arbitrary order, and minimisation.
"""

import pytest

from repro.core.conditions import Condition
from repro.core.polyvalue import Polyvalue, is_polyvalue, reduce_value
from repro.sim.rand import Rng

CHAIN_LENGTH = 15


def build_chain(length=CHAIN_LENGTH):
    """value_n = in_doubt(T_n, n, value_{n-1}), starting from 0."""
    value = 0
    for index in range(1, length + 1):
        value = Polyvalue.in_doubt(f"T{index}", index, value)
    return value


@pytest.mark.slow
class TestChainGrowth:
    def test_pairs_grow_linearly_not_exponentially(self):
        # Each layer adds one new possibility; flattening + merging
        # keeps the pair count at n+1, not 2^n.
        value = build_chain()
        assert len(value) == CHAIN_LENGTH + 1

    def test_possible_values_are_the_layers(self):
        value = build_chain()
        assert set(value.possible_values()) == set(range(CHAIN_LENGTH + 1))

    def test_depends_on_all_transactions(self):
        value = build_chain()
        assert value.depends_on() == frozenset(
            f"T{index}" for index in range(1, CHAIN_LENGTH + 1)
        )

    def test_semantics_last_committed_wins(self):
        # The chain means: the newest committed layer's value holds.
        value = build_chain(6)
        assignment = {f"T{i}": (i in (2, 4)) for i in range(1, 7)}
        # T4 is the newest committed -> value 4.
        assert value.value_under(assignment) == 4

    def test_all_aborted_resolves_to_original(self):
        value = build_chain(6)
        outcomes = {f"T{i}": False for i in range(1, 7)}
        assert value.reduce(outcomes) == 0


class TestStepwiseResolution:
    def test_resolution_in_shuffled_order(self):
        value = build_chain(10)
        rng = Rng(7)
        outcomes = {f"T{i}": rng.bernoulli(0.5) for i in range(1, 11)}
        expected = value.reduce(outcomes)
        # Resolve one transaction at a time in a shuffled order; the
        # final value must be identical.
        stepwise = value
        for txn in rng.shuffled(sorted(outcomes)):
            stepwise = reduce_value(stepwise, {txn: outcomes[txn]})
        assert stepwise == expected

    def test_partial_resolution_shrinks_monotonically(self):
        value = build_chain(8)
        sizes = [len(value)]
        current = value
        for index in range(1, 9):
            current = reduce_value(current, {f"T{index}": False})
            if is_polyvalue(current):
                sizes.append(len(current))
            else:
                sizes.append(1)
        assert sizes == sorted(sizes, reverse=True)
        assert current == 0


class TestMinimisationOnChains:
    def test_minimized_chain_equivalent(self):
        value = build_chain(6)
        squeezed = value.minimized()
        import itertools

        txns = [f"T{i}" for i in range(1, 7)]
        for combo in itertools.product((False, True), repeat=6):
            assignment = dict(zip(txns, combo))
            assert squeezed.value_under(assignment) == value.value_under(
                assignment
            )

    def test_chain_conditions_already_near_minimal(self):
        # The constructor's local rewrites keep chain conditions tight:
        # QM finds nothing (or almost nothing) left to remove.
        from repro.core.minimize import literal_count

        value = build_chain(6)
        squeezed = value.minimized()
        before = sum(literal_count(c) for _, c in value.pairs)
        after = sum(literal_count(c) for _, c in squeezed.pairs)
        assert after <= before


class TestChainThroughTheSystem:
    def test_five_stacked_windows_resolve_cleanly(self):
        from repro.txn.system import DistributedSystem
        from repro.txn.transaction import Transaction, TxnStatus

        system = DistributedSystem.build(
            sites=3,
            items={"hot": 0, "x": 0, "y": 0},
            seed=3,
            jitter=0.0,
        )
        home = system.catalog.site_of("hot")
        others = [s for s in sorted(system.sites) if s != home]

        def set_to(value):
            def body(ctx):
                ctx.read("hot")
                ctx.write("hot", value)

            return Transaction(body=body, items=("hot",))

        # Alternate coordinators; crash each inside the window, recover
        # it before the next round so it can coordinate again.
        for round_index in range(5):
            coordinator = others[round_index % 2]
            system.submit(set_to(round_index + 1), at=coordinator)
            system.run_for(0.035)
            system.crash_site(coordinator)
            system.run_for(0.6)  # wait-timeout fires; polyvalue stacks
            system.recover_site(coordinator)
            # Recover, but DON'T give the query loop time to resolve —
            # keep stacking.  (Interval is 1.0 s; we stay under it.)
            system.run_for(0.2)
        value = system.read_item("hot")
        if is_polyvalue(value):
            assert len(value.depends_on()) >= 2
        system.run_for(10.0)
        final = system.read_item("hot")
        assert not is_polyvalue(final)
        assert system.total_polyvalues() == 0
        assert system.outcome_bookkeeping_size() == 0