"""Keep the documentation honest: run doctests and the example scripts.

Docstring examples are part of the public API contract; the examples
directory is the first thing a new user runs.  Both rot silently unless
executed in CI — so this module executes them.
"""

import doctest
import pathlib
import subprocess
import sys

import pytest

import repro
import repro.core.conditions
import repro.core.polyvalue
import repro.sim.engine
import repro.txn.system

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))

DOCTEST_MODULES = [
    repro,
    repro.core.conditions,
    repro.core.polyvalue,
    repro.sim.engine,
    repro.txn.system,
]


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=lambda m: m.__name__
)
def test_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"
    # Modules listed here are expected to actually contain examples.
    assert results.attempted > 0, f"{module.__name__} has no doctests"


def test_examples_directory_is_complete():
    names = {path.name for path in EXAMPLES}
    for expected in (
        "quickstart.py",
        "funds_transfer.py",
        "reservations.py",
        "inventory_control.py",
        "paper_analysis.py",
        "policy_comparison.py",
        "protocol_trace.py",
        "replicated_bank.py",
    ):
        assert expected in names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    arguments = [sys.executable, str(script)]
    if script.name == "paper_analysis.py":
        arguments.append("--quick")
    completed = subprocess.run(
        arguments,
        capture_output=True,
        text=True,
        timeout=180,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
