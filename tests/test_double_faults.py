"""Double faults: a second failure landing inside recovery from a first.

Three scenarios the single-fault suites never reach:

* a participant crashes while in doubt, recovers (installing its
  polyvalues), and crashes AGAIN before the outcome queries resolve;
* a partition heals at the exact moment a wait-phase outcome query
  (the section 6 probe) is in flight across it;
* the coordinator's first complete messages are lost (one-way
  partition) and the coordinator then crashes — the durable commit
  record written *before* the completes is the only surviving evidence
  of the decision, and recovery must finish the commit from it.

Timing notes (zero jitter, 10 ms links): reads arrive at t=0.01,
stage requests at 0.03, ready messages at 0.04 — so the coordinator
decides at 0.04 and completes land at 0.05.
"""

import pytest

from repro.core.polyvalue import is_polyvalue
from repro.txn.config import ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus

from tests.conftest import move


def build(config=None, seed=11):
    return DistributedSystem.build(
        sites=3,
        items={f"item-{index}": 100 for index in range(6)},
        seed=seed,
        jitter=0.0,
        config=config,
    )


class TestCrashDuringRecovery:
    def _strand_committed_participant(self, system):
        """Commit a transfer whose target participant (site-1) crashed
        in its wait phase: the decision is COMMIT, site-1 holds the
        staged update durably but never learned the outcome."""
        handle = system.submit(move("item-0", "item-1", 10))
        system.run_for(0.035)  # site-1 staged, ready in flight
        system.crash_site("site-1")
        system.run_for(0.5)
        assert handle.status is TxnStatus.COMMITTED
        return handle

    def test_recrash_after_recovery_install_converges(self):
        system = build()
        self._strand_committed_participant(system)
        # First recovery: the staged-in-doubt transaction becomes
        # polyvalues, and outcome queries start.
        system.recover_site("site-1")
        assert system.sites["site-1"].polyvalue_count() > 0
        # Re-crash before any query answer can land (answers need one
        # round trip; 5 ms is inside it).
        system.run_for(0.005)
        system.crash_site("site-1")
        system.run_for(0.5)
        # Second recovery: nothing staged remains (the polyvalues are
        # stable storage), so recovery must not re-install or crash —
        # the outcome-query loop resolves the existing polyvalues.
        system.recover_site("site-1")
        system.run_for(5.0)
        assert system.read_item("item-1") == 110
        assert system.read_item("item-0") == 90
        assert system.settle(max_time=system.sim.now + 30.0)

    def test_double_recovery_does_not_double_install(self):
        system = build()
        self._strand_committed_participant(system)
        system.recover_site("site-1")
        system.run_for(0.005)
        count_after_first = system.metrics.in_doubt_windows
        system.crash_site("site-1")
        system.run_for(0.5)
        system.recover_site("site-1")
        system.run_for(0.005)
        # Recovery installs are non-live windows; the counter must not
        # move at all, on either pass.
        assert system.metrics.in_doubt_windows == count_after_first == 0

    def test_coordinator_crash_during_participant_recovery(self):
        # The outcome source itself disappears while the recovering
        # participant is querying: queries go unanswered until the
        # coordinator returns, then resolve from its durable log.
        system = build()
        self._strand_committed_participant(system)
        system.crash_site("site-0")
        system.recover_site("site-1")
        system.run_for(3.0)
        assert system.sites["site-1"].polyvalue_count() > 0  # still in doubt
        system.recover_site("site-0")
        system.run_for(5.0)
        assert system.read_item("item-1") == 110
        assert system.settle(max_time=system.sim.now + 30.0)


class TestHealWithQueryInFlight:
    def test_probe_crossing_healing_partition_resolves_without_polyvalue(self):
        # §6 probes on: the wait-phase timeout asks the coordinator
        # before installing.  The partition swallows the decision, the
        # first probe is launched while the link is still down, and the
        # partition heals while that probe is IN FLIGHT — it must be
        # delivered, answered, and resolve the wait without creating
        # any polyvalue.
        system = build(config=ProtocolConfig(wait_query_retries=2))
        handle = system.submit(move("item-0", "item-1", 10))
        system.run_for(0.045)  # decision made at 0.04, completes in flight
        system.network.partition("site-0", "site-1")
        system.run_for(0.49)  # wait timeout at ~0.53 sends the probe
        assert handle.status is TxnStatus.COMMITTED
        system.run_for(0.002)  # probe sent (t=0.53), not yet delivered
        system.network.heal("site-0", "site-1")
        system.run_for(2.0)
        site1 = system.sites["site-1"]
        assert site1.polyvalue_count() == 0
        assert system.metrics.in_doubt_windows == 0
        assert system.read_item("item-1") == 110
        assert system.settle(max_time=system.sim.now + 30.0)

    def test_partition_outlasting_probes_still_installs(self):
        # Sanity contrast: if the partition outlives every probe, the
        # participant must eventually fall back to polyvalues (the
        # probes must not block forever).
        system = build(config=ProtocolConfig(wait_query_retries=2))
        system.submit(move("item-0", "item-1", 10))
        system.run_for(0.045)
        system.network.partition("site-0", "site-1")
        system.run_for(3.0)
        assert system.sites["site-1"].polyvalue_count() > 0
        system.network.heal("site-0", "site-1")
        assert system.settle(max_time=system.sim.now + 30.0)
        assert system.read_item("item-1") == 110


class TestDurableDecisionSurvivesCoordinatorCrash:
    def test_commit_finishes_from_durable_log_after_crash(self):
        system = build()
        handle = system.submit(move("item-0", "item-1", 10))
        system.run_for(0.035)  # stages delivered, readies in flight
        # Cut only the coordinator's OUTBOUND links: the readies still
        # arrive (so the decision happens and is logged durably) but no
        # complete message ever leaves.
        system.network.partition_oneway("site-0", "site-1")
        system.network.partition_oneway("site-0", "site-2")
        system.run_for(0.01)
        assert handle.status is TxnStatus.COMMITTED
        log = system.sites["site-0"].runtime.outcome_log
        assert handle.txn in log.pending()
        # The crash, after the durable record but before any complete
        # was delivered.  Drops happen at delivery time, so keep the
        # cut up until the in-flight completes (due t=0.05) are gone.
        system.crash_site("site-0")
        system.run_for(0.02)
        system.network.heal_oneway("site-0", "site-1")
        system.network.heal_oneway("site-0", "site-2")
        system.run_for(1.0)
        # Participants time out in doubt meanwhile.
        assert system.sites["site-1"].polyvalue_count() > 0
        system.recover_site("site-0")
        system.run_for(5.0)
        # Recovery replays the outcome log: the commit completes.
        assert system.read_item("item-0") == 90
        assert system.read_item("item-1") == 110
        assert system.settle(max_time=system.sim.now + 30.0)
        assert log.pending() == frozenset()

    def test_decision_consistency_after_the_double_fault(self):
        from repro.check.oracles import CheckContext, check_converged

        system = build()
        system.submit(move("item-0", "item-1", 10))
        system.run_for(0.035)
        system.network.partition_oneway("site-0", "site-1")
        system.network.partition_oneway("site-0", "site-2")
        system.run_for(0.01)
        system.crash_site("site-0")
        system.run_for(0.02)
        system.network.heal_oneway("site-0", "site-1")
        system.network.heal_oneway("site-0", "site-2")
        system.run_for(1.0)
        system.recover_site("site-0")
        assert system.settle(max_time=system.sim.now + 30.0)
        verdicts = check_converged(CheckContext(system=system))
        failed = [v for v in verdicts if not v.ok]
        assert not failed, failed
