"""Gap-filling tests for less-travelled code paths."""

import pytest

from repro.core.conditions import Condition, conditions_are_complete
from repro.core.errors import ConditionError, PolyvalueError
from repro.core.polyvalue import Polyvalue
from repro.net.message import Envelope
from repro.txn import protocol
from repro.txn.config import CommitPolicy, ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TxnStatus

from tests.conftest import increment, move, run_to_decision


class TestRelaxedAbortGuess:
    def test_zero_probability_always_guesses_abort(self):
        config = ProtocolConfig(
            policy=CommitPolicy.RELAXED, relaxed_commit_probability=0.0
        )
        system = DistributedSystem.build(
            sites=3,
            items={"a": 100, "b": 100, "c": 100},
            seed=42,
            jitter=0.0,
            config=config,
        )
        system.submit(move("a", "b", 30))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(2.0)
        # The participant guessed ABORT: old value stands, no polyvalue.
        assert system.read_item("b") == 100
        assert system.metrics.unilateral_decisions >= 1
        system.recover_site("site-0")
        system.run_for(6.0)
        # Actual outcome was also abort -> the guess happened to agree.
        assert system.metrics.inconsistent_decisions == 0

    def test_relaxed_participant_crash_recovery_guesses(self):
        config = ProtocolConfig(policy=CommitPolicy.RELAXED)
        system = DistributedSystem.build(
            sites=3,
            items={"a": 100, "b": 100, "c": 100},
            seed=42,
            jitter=0.0,
            config=config,
        )
        system.submit(move("a", "b", 30))
        system.run_for(0.035)
        system.crash_site("site-1")  # the PARTICIPANT holding b
        system.run_for(1.0)
        system.recover_site("site-1")
        system.run_for(0.01)
        # Recovery applied the unilateral policy to the staged txn.
        assert system.metrics.unilateral_decisions >= 1
        system.run_for(6.0)
        assert system.read_item("b") in (100, 130)


class TestBlockingParticipantCrash:
    def test_blocking_recovery_relocks_and_waits(self):
        config = ProtocolConfig(policy=CommitPolicy.BLOCKING)
        system = DistributedSystem.build(
            sites=3,
            items={"a": 100, "b": 100, "c": 100},
            seed=42,
            jitter=0.0,
            config=config,
        )
        handle = system.submit(move("a", "b", 30))
        system.run_for(0.035)
        system.crash_site("site-1")
        system.run_for(1.0)
        system.recover_site("site-1")
        system.run_for(0.01)
        site1 = system.sites["site-1"]
        # Re-acquired the write lock and resumed blocking...
        blocked = site1.participant.blocked_transactions()
        if blocked:
            assert "b" in site1.runtime.locks.locked_items()
        # ...until the outcome-query loop resolves it.
        system.run_for(6.0)
        assert not site1.participant.blocked_transactions()
        assert site1.runtime.locks.locked_items() == frozenset()
        assert system.read_item("b") in (100, 130)
        assert handle.status is not TxnStatus.PENDING


class TestFanOutAbort:
    def test_transaction_exceeding_alternatives_budget_aborts(self):
        # A budget of 1 means ANY partitioning read overflows: the
        # coordinator catches TooManyAlternativesError and aborts.
        config = ProtocolConfig(max_alternatives=1)
        system = DistributedSystem.build(
            sites=3,
            items={f"item-{index}": 100 for index in range(3)},
            seed=42,
            jitter=0.0,
            config=config,
        )
        system.submit(move("item-0", "item-1", 30))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.0)
        from repro.core.polyvalue import is_polyvalue

        assert is_polyvalue(system.read_item("item-1"))
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.ABORTED
        assert "fan-out overflow" in handle.abort_reason
        assert system.metrics.fanout_overflows == 1


class TestOutcomeCacheAnswers:
    def test_query_answered_from_cache_after_log_gc(self):
        system = DistributedSystem.build(
            sites=3, items={"a": 1, "b": 2, "c": 3}, seed=7, jitter=0.0
        )
        handle = system.submit(move("a", "b", 1))
        run_to_decision(system, handle)
        system.run_for(1.0)
        log = system.sites["site-0"].runtime.outcome_log
        assert not log.knows(handle.txn)  # GC'd after acks
        # A late query must still get the true COMMITTED answer (from
        # the known-outcomes cache), not a presumed abort.
        system.sites["site-0"].on_message(
            Envelope(
                sender="site-2",
                recipient="site-0",
                payload=protocol.OutcomeQuery(
                    txn=handle.txn, requester="site-2"
                ),
                sent_at=system.sim.now,
            )
        )
        system.run_for(1.0)
        assert (
            system.sites["site-2"].runtime.known_outcomes[handle.txn] is True
        )


class TestConditionLimits:
    def test_completeness_check_variable_cap(self):
        wide = [Condition.of(f"T{i}") for i in range(25)]
        with pytest.raises(ConditionError):
            conditions_are_complete(wide)

    def test_reduce_with_contradictory_outcomes_raises(self):
        pv = Polyvalue.in_doubt("T1", 1, 2)
        # Force the impossible: both pairs falsified via a doctored
        # polyvalue (validation off).
        broken = Polyvalue(
            [(1, Condition.of("T1")), (2, Condition.of("T2"))], validate=False
        )
        with pytest.raises(PolyvalueError):
            broken.reduce({"T1": False, "T2": False})


class TestCliUnstableSimulate:
    def test_simulate_reports_unstable_model(self, capsys):
        from repro.cli import main

        # U*D > I*R: the simulation runs, the model column is flagged.
        code = main(
            [
                "simulate",
                "-i", "1000", "-u", "20", "-d", "5",
                "-r", "0.01", "-f", "0.001",
                "--duration", "500", "--seed", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unstable regime" in out
