"""Exception hierarchy and public-API export checks.

These tests pin the contract a downstream user relies on: every library
error is catchable as ``ReproError``; the advertised names exist and
``__all__`` is honest (no dangling names, nothing private)."""

import pytest

import repro
import repro.analysis
import repro.core
import repro.db
import repro.metrics
import repro.net
import repro.sim
import repro.txn
import repro.workloads
from repro.core import errors


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_specific_parentage(self):
        assert issubclass(errors.UncertainValueError, errors.PolyvalueError)
        assert issubclass(errors.IncompleteConditionsError, errors.PolyvalueError)
        assert issubclass(errors.OverlappingConditionsError, errors.PolyvalueError)
        assert issubclass(errors.TransactionAborted, errors.TransactionError)
        assert issubclass(errors.LockError, errors.TransactionError)
        assert issubclass(errors.SiteDownError, errors.NetworkError)

    def test_one_except_clause_catches_all(self):
        from repro.core.conditions import Condition
        from repro.core.polyvalue import Polyvalue

        with pytest.raises(errors.ReproError):
            Polyvalue([])
        with pytest.raises(errors.ReproError):
            Condition.of("T1").substitute({})  # fine...
            raise errors.SimulationError("synthetic")

    def test_serialization_error_is_polyvalue_error(self):
        from repro.core.serialize import SerializationError

        assert issubclass(SerializationError, errors.PolyvalueError)


ALL_PACKAGES = [
    repro,
    repro.analysis,
    repro.core,
    repro.db,
    repro.metrics,
    repro.net,
    repro.sim,
    repro.txn,
    repro.workloads,
]


@pytest.mark.parametrize("package", ALL_PACKAGES, ids=lambda p: p.__name__)
def test_all_names_resolve(package):
    for name in package.__all__:
        assert hasattr(package, name), f"{package.__name__}.{name} missing"


@pytest.mark.parametrize("package", ALL_PACKAGES, ids=lambda p: p.__name__)
def test_all_is_sorted_and_unique(package):
    names = [n for n in package.__all__ if n != "__version__"]
    assert names == sorted(names), f"{package.__name__}.__all__ unsorted"
    assert len(names) == len(set(names))


@pytest.mark.parametrize("package", ALL_PACKAGES, ids=lambda p: p.__name__)
def test_no_private_names_exported(package):
    for name in package.__all__:
        assert not name.startswith("_") or name == "__version__"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_top_level_quickstart_names():
    for name in (
        "DistributedSystem",
        "Transaction",
        "Polyvalue",
        "Condition",
        "combine",
        "definitely",
        "polyvalue_system",
    ):
        assert hasattr(repro, name)


class TestTransitionLogDot:
    def test_dot_renders_all_edges(self):
        from repro.txn.runtime import SiteState, TransitionLog

        log = TransitionLog()
        log.record(0.0, "s", "T1", SiteState.IDLE, SiteState.COMPUTE, "begin")
        dot = log.to_dot()
        assert dot.startswith("digraph")
        assert 'begin (x1)' in dot
        assert "dashed" in dot  # unobserved edges
        assert dot.count("->") == 7

    def test_dot_full_diagram(self):
        from repro.txn.runtime import TransitionLog

        dot = TransitionLog().to_dot(observed_only=False)
        assert "dashed" not in dot
