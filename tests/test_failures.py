"""Unit tests for failure injection (repro.net.failures)."""

import pytest

from repro.core.errors import SimulationError
from repro.net.failures import CrashPlan, RandomFailures, ScriptedFailures
from repro.sim.engine import Simulator
from repro.sim.rand import Rng


class RecordingTarget:
    """A Crashable that records every crash/recover with its time."""

    def __init__(self, sim):
        self.sim = sim
        self.events = []
        self.down = set()

    def crash_site(self, site):
        self.events.append(("crash", site, self.sim.now))
        self.down.add(site)

    def recover_site(self, site):
        self.events.append(("recover", site, self.sim.now))
        self.down.discard(site)


class TestScriptedFailures:
    def test_single_outage_executed_on_schedule(self):
        sim = Simulator()
        target = RecordingTarget(sim)
        ScriptedFailures(sim, target, [CrashPlan("s1", at=2.0, duration=3.0)])
        sim.run()
        assert target.events == [
            ("crash", "s1", 2.0),
            ("recover", "s1", 5.0),
        ]

    def test_multiple_outages_sorted(self):
        sim = Simulator()
        target = RecordingTarget(sim)
        injector = ScriptedFailures(
            sim,
            target,
            [
                CrashPlan("s2", at=5.0, duration=1.0),
                CrashPlan("s1", at=1.0, duration=1.0),
            ],
        )
        assert [plan.site for plan in injector.plans] == ["s1", "s2"]
        sim.run()
        assert target.events[0] == ("crash", "s1", 1.0)

    def test_overlapping_outages_different_sites(self):
        sim = Simulator()
        target = RecordingTarget(sim)
        ScriptedFailures(
            sim,
            target,
            [
                CrashPlan("s1", at=1.0, duration=10.0),
                CrashPlan("s2", at=2.0, duration=1.0),
            ],
        )
        sim.run_until(4.0)
        assert target.down == {"s1"}

    def test_invalid_plan_rejected(self):
        with pytest.raises(SimulationError):
            CrashPlan("s1", at=-1.0, duration=1.0)
        with pytest.raises(SimulationError):
            CrashPlan("s1", at=1.0, duration=0.0)


class TestRandomFailures:
    def test_crashes_and_recoveries_occur(self):
        sim = Simulator()
        target = RecordingTarget(sim)
        injector = RandomFailures(
            sim,
            target,
            Rng(1),
            crash_rate=0.1,
            mean_repair=1.0,
            sites=["s1", "s2"],
        )
        sim.run_until(200.0)
        assert injector.crashes_injected > 5
        crashes = [e for e in target.events if e[0] == "crash"]
        recoveries = [e for e in target.events if e[0] == "recover"]
        assert len(crashes) == injector.crashes_injected
        # Every crash recovers eventually (run long past mean repair).
        assert len(recoveries) >= len(crashes) - 2

    def test_no_double_crash_of_same_site(self):
        sim = Simulator()
        target = RecordingTarget(sim)

        class StrictTarget(RecordingTarget):
            def crash_site(self, site):
                assert site not in self.down, "crashed a down site"
                super().crash_site(site)

        strict = StrictTarget(sim)
        RandomFailures(
            sim,
            strict,
            Rng(3),
            crash_rate=2.0,  # very frequent vs. repair time
            mean_repair=5.0,
            sites=["s1"],
        )
        sim.run_until(50.0)

    def test_zero_rate_never_crashes(self):
        sim = Simulator()
        target = RecordingTarget(sim)
        RandomFailures(
            sim, target, Rng(0), crash_rate=0.0, mean_repair=1.0, sites=["s1"]
        )
        sim.run_until(100.0)
        assert target.events == []

    def test_parameter_validation(self):
        sim = Simulator()
        target = RecordingTarget(sim)
        with pytest.raises(SimulationError):
            RandomFailures(
                sim, target, Rng(0), crash_rate=-1, mean_repair=1, sites=["s1"]
            )
        with pytest.raises(SimulationError):
            RandomFailures(
                sim, target, Rng(0), crash_rate=1, mean_repair=0, sites=["s1"]
            )
        with pytest.raises(SimulationError):
            RandomFailures(
                sim, target, Rng(0), crash_rate=1, mean_repair=1, sites=[]
            )

    def test_seeded_reproducibility(self):
        def run(seed):
            sim = Simulator()
            target = RecordingTarget(sim)
            RandomFailures(
                sim,
                target,
                Rng(seed),
                crash_rate=0.05,
                mean_repair=2.0,
                sites=["s1", "s2"],
            )
            sim.run_until(100.0)
            return target.events

        assert run(9) == run(9)
        assert run(9) != run(10)
