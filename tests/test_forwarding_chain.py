"""Tests for the §3.3 outcome-forwarding chain.

"Because of the propagation of polyvalues by polytransactions, the
sites that may hold polyvalues dependent on the outcome of a
transaction T, are not limited to the sites involved in T. ...  The
responsibility for informing the sites with polyvalues dependent on T
of the outcome of T ... can be distributed among the sites."

Scenario: T's in-doubt polyvalue lives on item ``b`` at site-1.  A
polytransaction coordinated at site-2 reads ``b`` and writes ``d``
(site-0's item — but we use a 4-site layout so the chain is visible):

* site-1 forwarded the polyvalue to site-2 → records (T → site-2);
* site-2 shipped the computed polyvalue to ``d``'s home → records
  (T → that site);
* ``d``'s home records the per-item dependency.

When T's outcome becomes known, the notifications must flow down that
chain — the final site never queries T's coordinator itself (it was
never a direct participant of T, so it is not covered by the
coordinator's log retention).
"""

import pytest

from repro.core.polyvalue import is_polyvalue
from repro.db.catalog import Catalog
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TxnStatus

from tests.conftest import run_to_decision


def build(seed=11):
    catalog = Catalog.from_mapping(
        {"a": "site-0", "b": "site-1", "c": "site-2", "d": "site-3"}
    )
    return DistributedSystem(
        catalog=catalog,
        initial_values={"a": 100, "b": 200, "c": 300, "d": 400},
        seed=seed,
        jitter=0.0,
    )


def move(source, target, amount):
    def body(ctx):
        ctx.write(source, ctx.read(source) - amount)
        ctx.write(target, ctx.read(target) + amount)

    return Transaction(body=body, items=(source, target))


def copy_b_into_d():
    def body(ctx):
        ctx.write("d", ctx.read("b"))

    return Transaction(body=body, items=("b", "d"))


def make_chain(system):
    """Create the in-doubt polyvalue on b, then propagate it to d."""
    in_doubt = system.submit(move("a", "b", 30), at="site-0")
    system.run_for(0.035)
    system.crash_site("site-0")
    system.run_for(1.5)
    assert is_polyvalue(system.read_item("b"))
    copier = system.submit(copy_b_into_d(), at="site-2")
    run_to_decision(system, copier)
    assert copier.status is TxnStatus.COMMITTED
    assert is_polyvalue(system.read_item("d"))
    return in_doubt


class TestForwardRecording:
    def test_reader_records_forward_to_coordinator(self):
        system = build()
        in_doubt = make_chain(system)
        table = system.sites["site-1"].runtime.outcomes
        assert "site-2" in table.forwarded_sites(in_doubt.txn)

    def test_coordinator_records_forward_to_write_site(self):
        system = build()
        in_doubt = make_chain(system)
        table = system.sites["site-2"].runtime.outcomes
        assert "site-3" in table.forwarded_sites(in_doubt.txn)

    def test_final_site_records_item_dependency(self):
        system = build()
        in_doubt = make_chain(system)
        table = system.sites["site-3"].runtime.outcomes
        assert "d" in table.dependent_items(in_doubt.txn)

    def test_final_site_does_not_query_coordinator(self):
        # d's home was never a direct participant of the in-doubt txn:
        # it must not be in the active-query set (it relies on the
        # chain; querying post-GC could return a wrong presumed abort).
        system = build()
        in_doubt = make_chain(system)
        runtime = system.sites["site-3"].runtime
        assert in_doubt.txn not in runtime.direct_doubts


class TestChainResolution:
    def test_outcome_flows_down_the_chain(self):
        system = build()
        make_chain(system)
        system.recover_site("site-0")
        system.run_for(8.0)
        # Presumed abort: b back to 200, and the copy of b in d is 200.
        assert system.read_item("b") == 200
        assert system.read_item("d") == 200
        assert system.total_polyvalues() == 0
        assert system.outcome_bookkeeping_size() == 0

    def test_chain_survives_forwarder_outage(self):
        # Crash the middle of the chain (site-2) before recovery of the
        # coordinator.  Its pending-notification state is durable, so
        # after site-2 comes back the chain still completes.
        system = build()
        make_chain(system)
        system.crash_site("site-2")
        system.recover_site("site-0")
        system.run_for(5.0)
        # b resolved (site-1 queries the coordinator directly)...
        assert system.read_item("b") == 200
        # ...but d cannot have: its notifier is down.
        assert is_polyvalue(system.read_item("d"))
        system.recover_site("site-2")
        system.run_for(8.0)
        assert system.read_item("d") == 200
        assert system.total_polyvalues() == 0
        assert system.outcome_bookkeeping_size() == 0

    def test_chain_delivers_commit_outcomes_too(self):
        # Same chain, but the in-doubt transaction actually COMMITTED
        # (partition dropped the complete message instead of a crash).
        system = build()
        handle = system.submit(move("a", "b", 30), at="site-0")
        system.run_for(0.041)  # decision made; completes in flight
        system.network.partition("site-0", "site-1")
        system.run_for(1.5)
        if not is_polyvalue(system.read_item("b")):
            pytest.skip("complete beat the partition under this seed")
        copier = system.submit(copy_b_into_d(), at="site-2")
        run_to_decision(system, copier)
        system.network.heal_all()
        system.run_for(8.0)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("b") == 230
        assert system.read_item("d") == 230
        assert system.total_polyvalues() == 0
