"""Tests for the four-protocol frontier campaign.

The frontier crosses one protocol-independent fault matrix with every
bake-off protocol and reports ``{availability, latency, messages per
committed txn}`` per protocol — so the matrix must be genuinely
protocol-free, the aggregation must be independent of the worker
count, and the Didona-style lower-bound sanity check must hold on the
default smoke campaign.
"""

import pytest

from repro.frontier import (
    COORDINATED,
    FRONTIER_PROTOCOLS,
    SMOKE_SCENARIOS,
    fault_matrix,
    run_frontier,
)
from repro.sim.engine import SimulationError


class TestFaultMatrix:
    def test_matrix_is_protocol_free(self):
        matrix = fault_matrix(trials=2, scenarios=("pair", "transfers"))
        assert all(s.protocol is None for s in matrix)
        assert all(s.fault is None for s in matrix)

    def test_one_clean_anchor_per_scenario(self):
        matrix = fault_matrix(trials=2, scenarios=("pair", "transfers"))
        clean = [s for s in matrix if not s.actions]
        assert sorted(s.scenario for s in clean) == ["pair", "transfers"]
        assert len(matrix) == 2 * (1 + 2)

    def test_matrix_is_deterministic(self):
        first = fault_matrix(campaign_seed=7, trials=3)
        second = fault_matrix(campaign_seed=7, trials=3)
        assert first == second

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SimulationError):
            fault_matrix(scenarios=("nope",))


class TestRunFrontier:
    @pytest.fixture(scope="class")
    def report(self):
        return run_frontier(campaign_seed=0, trials=2, smoke=True, jobs=1)

    def test_smoke_campaign_is_ok(self, report):
        assert report.failed_trials == []
        assert report.ok

    def test_every_protocol_measured(self, report):
        assert set(report.protocols) == set(FRONTIER_PROTOCOLS)
        expected = len(SMOKE_SCENARIOS) * (1 + 2)
        assert report.schedules_per_protocol == expected
        for stats in report.protocols.values():
            assert stats.committed > 0

    def test_didona_floor_holds(self, report):
        assert report.didona_ok
        floor = 2.0 * report.base_latency
        for name in COORDINATED:
            assert report.protocols[name].mean_latency >= floor

    def test_path_sensitive_wins_on_messages(self, report):
        polyvalue = report.protocols["polyvalue"]
        path = report.protocols["pathsensitive"]
        assert path.messages_per_commit < polyvalue.messages_per_commit
        assert path.availability >= polyvalue.availability

    def test_to_bench_carries_guards(self, report):
        payload = report.to_bench()
        for name in FRONTIER_PROTOCOLS:
            assert f"frontier_availability_{name}" in payload["guards"]
            assert f"frontier_{name}_msgs_per_commit" in payload["results"]
        assert payload["guards"]["frontier_path_message_advantage"] > 1.0
        assert payload["results"]["frontier_didona_ok"] is True
        assert payload["results"]["frontier_settled"] is True

    def test_bit_identical_across_job_counts(self, report):
        parallel = run_frontier(
            campaign_seed=0, trials=2, smoke=True, jobs=2
        )
        assert parallel.to_bench() == report.to_bench()

    def test_protocol_subset_and_validation(self):
        report = run_frontier(
            campaign_seed=0,
            trials=1,
            smoke=True,
            scenarios=("pair",),
            protocols=("polyvalue", "paxos"),
        )
        assert set(report.protocols) == {"polyvalue", "paxos"}
        with pytest.raises(SimulationError):
            run_frontier(protocols=("three-phase",), smoke=True)
