"""The gray-failure fault model in repro.net.

Fail-stop failures (crash, partition) silence a site completely; gray
failures leave it limping — slow, lossy in one direction, or corrupting
messages.  These tests pin the semantics of each gray primitive
directly at the network layer: latency multipliers compose, one-way
partitions block exactly one direction, corruption is detected-and-
dropped (never delivered), and the repair operations restore the
healthy baseline exactly.
"""

import pytest

from repro.core.errors import NetworkError
from repro.net.failures import FailureAction, ScheduleScript
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.rand import Rng


def make_network(**kwargs):
    sim = Simulator()
    network = Network(sim, Rng(7), base_latency=0.01, jitter=0.0, **kwargs)
    inboxes = {}
    for site in ("a", "b", "c"):
        inboxes[site] = []
        network.register(
            site,
            lambda env, box=inboxes[site]: box.append(
                (env.payload, network._sim.now)
            ),
        )
    return sim, network, inboxes


def send_and_run(sim, network, sender, recipient, payload="m"):
    start = sim.now
    network.send(sender, recipient, payload)
    sim.run_until(sim.now + 100.0)
    return start


class TestDegradedSite:
    def test_degrade_multiplies_latency_both_directions(self):
        sim, network, inboxes = make_network()
        network.degrade_site("b", 5.0)
        start = send_and_run(sim, network, "a", "b")
        assert inboxes["b"][-1][1] == pytest.approx(start + 0.05)
        start = send_and_run(sim, network, "b", "a")
        assert inboxes["a"][-1][1] == pytest.approx(start + 0.05)

    def test_degrade_does_not_slow_unrelated_links(self):
        sim, network, inboxes = make_network()
        network.degrade_site("b", 5.0)
        start = send_and_run(sim, network, "a", "c")
        assert inboxes["c"][-1][1] == pytest.approx(start + 0.01)

    def test_degrade_replaces_not_stacks(self):
        sim, network, _ = make_network()
        network.degrade_site("b", 5.0)
        network.degrade_site("b", 2.0)
        assert network.degradation_of("b") == 2.0

    def test_factors_compose_across_sites_and_links(self):
        sim, network, inboxes = make_network()
        network.degrade_site("a", 2.0)
        network.degrade_site("b", 3.0)
        network.spike_link("a", "b", 4.0)
        start = send_and_run(sim, network, "a", "b")
        assert inboxes["b"][-1][1] == pytest.approx(start + 0.01 * 24.0)

    def test_restore_site_returns_to_baseline(self):
        sim, network, inboxes = make_network()
        network.degrade_site("b", 5.0)
        network.restore_site("b")
        assert network.degradation_of("b") == 1.0
        start = send_and_run(sim, network, "a", "b")
        assert inboxes["b"][-1][1] == pytest.approx(start + 0.01)

    def test_degrade_factor_below_one_rejected(self):
        _, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.degrade_site("b", 0.5)

    def test_traffic_still_flows_while_degraded(self):
        # The defining property of a gray failure: nothing is dropped.
        sim, network, inboxes = make_network()
        network.degrade_site("b", 100.0)
        send_and_run(sim, network, "a", "b")
        assert len(inboxes["b"]) == 1
        assert network.stats.dropped == 0


class TestLinkSpike:
    def test_spike_is_directional(self):
        sim, network, inboxes = make_network()
        network.spike_link("a", "b", 10.0)
        start = send_and_run(sim, network, "a", "b")
        assert inboxes["b"][-1][1] == pytest.approx(start + 0.1)
        start = send_and_run(sim, network, "b", "a")
        assert inboxes["a"][-1][1] == pytest.approx(start + 0.01)

    def test_clear_link_restores_baseline(self):
        sim, network, inboxes = make_network()
        network.spike_link("a", "b", 10.0)
        network.clear_link("a", "b")
        start = send_and_run(sim, network, "a", "b")
        assert inboxes["b"][-1][1] == pytest.approx(start + 0.01)

    def test_spike_factor_below_one_rejected(self):
        _, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.spike_link("a", "b", 0.9)


class TestOneWayPartition:
    def test_blocks_one_direction_only(self):
        sim, network, inboxes = make_network()
        network.partition_oneway("a", "b")
        send_and_run(sim, network, "a", "b")
        assert inboxes["b"] == []
        assert network.stats.dropped_partition == 1
        send_and_run(sim, network, "b", "a")
        assert len(inboxes["a"]) == 1

    def test_is_blocked_reflects_direction(self):
        _, network, _ = make_network()
        network.partition_oneway("a", "b")
        assert network.is_blocked("a", "b")
        assert not network.is_blocked("b", "a")

    def test_heal_oneway(self):
        sim, network, inboxes = make_network()
        network.partition_oneway("a", "b")
        network.heal_oneway("a", "b")
        send_and_run(sim, network, "a", "b")
        assert len(inboxes["b"]) == 1

    def test_heal_all_clears_oneway_partitions(self):
        sim, network, inboxes = make_network()
        network.partition_oneway("a", "b")
        network.partition("b", "c")
        network.heal_all()
        send_and_run(sim, network, "a", "b")
        send_and_run(sim, network, "b", "c")
        assert len(inboxes["b"]) == 1
        assert len(inboxes["c"]) == 1


class TestCorruption:
    def test_corrupted_messages_are_dropped_and_counted(self):
        sim, network, inboxes = make_network(corruption_probability=1.0)
        send_and_run(sim, network, "a", "b")
        assert inboxes["b"] == []
        assert network.stats.dropped_corrupt == 1
        assert network.stats.dropped == 1

    def test_corruption_counts_separately_from_loss(self):
        sim, network, _ = make_network(
            loss_probability=0.5, corruption_probability=0.5
        )
        for _ in range(200):
            network.send("a", "b", "m")
        sim.run_until(sim.now + 100.0)
        assert network.stats.dropped_loss > 0
        assert network.stats.dropped_corrupt > 0
        assert (
            network.stats.delivered
            + network.stats.dropped_loss
            + network.stats.dropped_corrupt
            == 200
        )


class TestClearDegradations:
    def test_clears_degrades_and_spikes_not_partitions(self):
        _, network, _ = make_network()
        network.degrade_site("a", 5.0)
        network.spike_link("a", "b", 10.0)
        network.partition("a", "c")
        network.clear_degradations()
        assert network.degradation_of("a") == 1.0
        assert network._gray_factor("a", "b") == 1.0
        assert network.is_partitioned("a", "c")


class TestScriptedGrayFailures:
    def test_schedule_script_drives_gray_vocabulary(self):
        sim, network, inboxes = make_network()
        script = ScheduleScript(
            sim,
            network,
            network,
            actions=[
                FailureAction(at=0.1, kind="degrade", targets=("b",), value=5.0),
                FailureAction(
                    at=0.2, kind="link-spike", targets=("a", "c"), value=10.0
                ),
                FailureAction(
                    at=0.3, kind="partition-oneway", targets=("a", "b")
                ),
                FailureAction(at=0.4, kind="restore", targets=("b",)),
                FailureAction(at=0.5, kind="link-clear", targets=("a", "c")),
                FailureAction(at=0.6, kind="heal-oneway", targets=("a", "b")),
            ],
        )
        assert len(script.actions) == 6
        sim.run_until(0.25)
        assert network.degradation_of("b") == 5.0
        assert network._gray_factor("a", "c") == 10.0
        sim.run_until(0.35)
        assert network.is_blocked("a", "b")
        sim.run_until(1.0)
        assert network.degradation_of("b") == 1.0
        assert network._gray_factor("a", "c") == 1.0
        assert not network.is_blocked("a", "b")

    def test_valued_kind_requires_factor(self):
        with pytest.raises(Exception):
            FailureAction(at=0.1, kind="degrade", targets=("b",), value=0.0)
