"""Tests for campaign recording + history/serve-dash CLI plumbing."""

import argparse
import json
import re

import pytest

from repro.cli import _bench_baseline, _looks_like_store, main
from repro.obs.store import CampaignStore, record_bench_report


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "campaigns.sqlite")


def _chaos(store_path, seed=0):
    return main([
        "chaos", "--smoke", "--seeds", "2", "--seed", str(seed),
        "--store", store_path,
    ])


class TestStoreRecording:
    def test_chaos_run_lands_in_store(self, store_path, capsys):
        assert _chaos(store_path) == 0
        capsys.readouterr()
        assert main(["history", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert re.search(r"^\s*1\s+chaos\s+chaos", out, re.M)
        assert " yes " in out  # run verdict column

    def test_history_reproduces_chaos_headlines(self, store_path, capsys):
        """The acceptance contract: every number in the campaign's
        stdout headline is recoverable, bit-identical, from the store."""
        assert _chaos(store_path) == 0
        stdout = capsys.readouterr().out
        headline = re.search(
            r"(\d+) chaos schedules in [\d.]+s wall "
            r"\((\d+) gray \+ (\d+) fail-stop actions, (\d+) events",
            stdout,
        )
        assert headline is not None
        schedules, gray, failstop, events = map(int, headline.groups())
        assert main([
            "history", "--store", store_path, "--run", "1",
            "--format", "json",
        ]) == 0
        dump = json.loads(capsys.readouterr().out)
        metrics = dump["metrics"]
        assert metrics["schedules"] == schedules
        assert metrics["gray_actions"] == gray
        assert metrics["failstop_actions"] == failstop
        assert metrics["events"] == events
        assert metrics["violations"] == 0
        assert dump["run"]["ok"] is True
        assert len(dump["trials"]) == schedules
        assert all(t["seed"] is not None for t in dump["trials"])
        assert dump["verdicts"] and all(v["ok"] for v in dump["verdicts"])
        # The summed in-doubt window histogram rode along.
        assert "repro_in_doubt_window_seconds" in dump["histograms"]

    def test_repro_store_env_turns_recording_on(
        self, store_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE", store_path)
        assert main([
            "sweep", "-p", "recovery_rate", "--values", "0.001,0.002",
        ]) == 0
        capsys.readouterr()
        assert main(["history"]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out

    def test_no_store_flag_means_no_store_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main([
            "sweep", "-p", "recovery_rate", "--values", "0.001",
        ]) == 0
        assert not (tmp_path / ".repro").exists()


class TestHistoryQueries:
    def test_metric_trend_shows_deltas(self, store_path, capsys):
        _chaos(store_path, seed=0)
        _chaos(store_path, seed=1)
        capsys.readouterr()
        assert main([
            "history", "--store", store_path, "--metric", "schedules",
        ]) == 0
        out = capsys.readouterr().out
        assert "metric schedules" in out
        assert out.count("\n") >= 4  # header + 2 rows
        # First row has no predecessor; the second carries a delta.
        rows = [line for line in out.splitlines()
                if re.match(r"^\s*\d+\s+chaos", line)]
        assert len(rows) == 2
        assert rows[0].rstrip().endswith("-")
        assert re.search(r"[+-][\d.]+%|\s-$", rows[1])

    def test_unknown_metric_lists_known_names(self, store_path, capsys):
        _chaos(store_path)
        capsys.readouterr()
        assert main([
            "history", "--store", store_path, "--metric", "nope",
        ]) == 1
        out = capsys.readouterr().out
        assert "no history for metric 'nope'" in out
        assert "schedules" in out

    def test_missing_store_is_an_error(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        missing = str(tmp_path / "absent.sqlite")
        assert main(["history", "--store", missing]) == 1
        assert "no campaign store" in capsys.readouterr().err

    def test_json_run_listing(self, store_path, capsys):
        _chaos(store_path)
        capsys.readouterr()
        assert main([
            "history", "--store", store_path, "--format", "json",
        ]) == 0
        runs = json.loads(capsys.readouterr().out)
        assert len(runs) == 1
        assert runs[0]["command"] == "chaos"
        assert runs[0]["config"]["smoke"] is True


class TestBenchBaselineResolution:
    def test_looks_like_store(self, store_path, tmp_path):
        assert _looks_like_store("store")
        assert _looks_like_store("missing-file.sqlite")
        assert not _looks_like_store("BENCH_perf.json")
        CampaignStore(store_path).close()
        assert _looks_like_store(store_path)  # by magic bytes
        json_path = tmp_path / "baseline.json"
        json_path.write_text('{"schema": 1}')
        assert not _looks_like_store(str(json_path))

    def test_baseline_from_stored_history(self, store_path):
        with CampaignStore(store_path) as store:
            run_id = store.begin_run("bench", config={"mode": "smoke"})
            record_bench_report(store, run_id, {
                "results": {"txn_commit_throughput": 400.0},
                "guards": {"condition_cache_speedup": 12.0},
            })
            store.finish_run(run_id, ok=True)
        args = argparse.Namespace(check_against=store_path, store=None)
        baseline = _bench_baseline(args, None)
        assert baseline["run_id"] == run_id
        assert baseline["guards"] == {"condition_cache_speedup": 12.0}
        assert baseline["results"] == {"txn_commit_throughput": 400.0}

    def test_empty_store_yields_no_baseline(self, store_path):
        CampaignStore(store_path).close()
        args = argparse.Namespace(check_against=store_path, store=None)
        assert _bench_baseline(args, None) is None

    def test_json_baseline_still_loads(self, tmp_path):
        payload = {"schema": 1, "guards": {"g": 1.0}, "results": {}}
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(payload))
        args = argparse.Namespace(check_against=str(path), store=None)
        assert _bench_baseline(args, None) == payload


class TestServeDashCLI:
    def test_bounded_run_prints_url(self, capsys):
        assert main([
            "serve-dash", "--port", "0", "--scenario", "chaos",
            "--trials", "1", "--duration", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert re.search(r"dashboard on http://127\.0\.0\.1:\d+/", out)


class TestCampaignMetricsFlag:
    def test_prometheus_file_export(self, tmp_path, capsys):
        out_path = str(tmp_path / "campaign.prom")
        assert main([
            "chaos", "--smoke", "--seeds", "2",
            "--campaign-metrics", out_path,
        ]) == 0
        text = open(out_path).read()
        assert 'repro_campaigns_total{label="chaos"} 1' in text
        assert 'repro_campaign_trials_total{label="chaos",status="ok"}' in text
        assert "repro_campaigns_active 0" in text

    def test_human_table_on_stdout(self, capsys):
        assert main([
            "chaos", "--smoke", "--seeds", "2",
            "--campaign-metrics", "-",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaigns" in out and "trials_ok" in out
