"""Tests for hot-spot (non-uniform) item selection in the Monte-Carlo
simulation — the paper's "effective size of the database" remark."""

import pytest

from repro.analysis.model import ModelParams, is_stable, steady_state_polyvalues
from repro.analysis.montecarlo import PolyvalueSimulation
from repro.core.errors import SimulationError


def params(u=10, f=0.01, i=10_000, r=0.01, d=1, y=0):
    return ModelParams(u, f, i, r, d, y)


class TestValidation:
    def test_fields_must_pair(self):
        with pytest.raises(SimulationError):
            PolyvalueSimulation(params(), hot_fraction=0.1, hot_weight=0.0)

    def test_bounds(self):
        with pytest.raises(SimulationError):
            PolyvalueSimulation(params(), hot_fraction=1.0, hot_weight=0.5)


class TestEffectiveSize:
    def test_uniform_is_identity(self):
        simulation = PolyvalueSimulation(params())
        assert simulation.effective_items() == params().items

    def test_skew_shrinks_effective_size(self):
        skewed = PolyvalueSimulation(
            params(), hot_fraction=0.05, hot_weight=0.5
        )
        assert skewed.effective_items() < params().items / 2

    def test_more_weight_shrinks_more(self):
        mild = PolyvalueSimulation(params(), hot_fraction=0.05, hot_weight=0.3)
        harsh = PolyvalueSimulation(params(), hot_fraction=0.05, hot_weight=0.7)
        assert harsh.effective_items() < mild.effective_items()

    def test_effective_size_formula(self):
        # Hand-checked: I=100, H=10, w=0.5:
        # p_hot = 0.5/10 + 0.5/100 = 0.055 ; p_cold = 0.005
        # sum p^2 = 10*0.055^2 + 90*0.005^2 = 0.03250
        simulation = PolyvalueSimulation(
            params(i=100), hot_fraction=0.1, hot_weight=0.5
        )
        assert simulation.effective_items() == pytest.approx(1 / 0.03250)


class TestSkewedSimulation:
    def test_skew_increases_polyvalues(self):
        # The skewed steady state (23.5 at I_eff=1739) is roughly twice
        # the uniform one (11.1); 4000 s gives the slower skewed system
        # time to climb there.
        uniform = PolyvalueSimulation(params(), seed=13).run(4000.0)
        skewed = PolyvalueSimulation(
            params(), seed=13, hot_fraction=0.05, hot_weight=0.5
        ).run(4000.0)
        assert skewed.mean_polyvalues > 1.4 * uniform.mean_polyvalues

    def test_model_at_effective_size_predicts_skewed_sim(self):
        simulation = PolyvalueSimulation(
            params(), seed=13, hot_fraction=0.05, hot_weight=0.5
        )
        effective = simulation.effective_items()
        result = simulation.run(3000.0)
        predicted = steady_state_polyvalues(params(i=effective))
        assert result.mean_polyvalues == pytest.approx(predicted, rel=0.4)

    def test_extreme_skew_destabilises(self):
        # A database comfortably stable under uniform access becomes
        # unstable once a tiny hot set absorbs most traffic.
        assert is_stable(params())
        simulation = PolyvalueSimulation(
            params(), seed=13, hot_fraction=0.01, hot_weight=0.8
        )
        assert not is_stable(params(i=simulation.effective_items()))
