"""Protocol idempotency under message duplication.

Real networks (and the protocol's own retry layers) deliver messages
more than once.  Every handler must be idempotent: a duplicated
complete must not install twice, a duplicated ready must not
double-commit, a duplicated outcome notification must not re-reduce.
These tests run the full protocol over a network that duplicates a
large fraction of messages and assert that nothing changes except the
traffic counters.
"""

import pytest

from repro.net.network import Network
from repro.core.errors import NetworkError
from repro.sim.engine import Simulator
from repro.sim.rand import Rng
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.generator import (
    RandomUpdateWorkload,
    WorkloadConfig,
    make_item_ids,
)

from tests.conftest import increment, move, run_to_decision


class TestNetworkDuplication:
    def test_duplicates_delivered_and_counted(self):
        sim = Simulator()
        network = Network(sim, Rng(0), duplicate_probability=1.0, jitter=0.0)
        inbox = []
        network.register("b", inbox.append)
        network.register("a", lambda e: None)
        network.send("a", "b", "x")
        sim.run()
        assert len(inbox) == 2
        assert network.stats.duplicated == 1
        assert network.stats.delivered == 2

    def test_invalid_probability_rejected(self):
        with pytest.raises(NetworkError):
            Network(Simulator(), Rng(0), duplicate_probability=1.5)


class TestProtocolUnderDuplication:
    def build(self, seed=23):
        return DistributedSystem.build(
            sites=3,
            items={f"item-{index}": 100 for index in range(6)},
            seed=seed,
            duplicate_probability=0.5,
        )

    def test_commit_applies_exactly_once(self):
        system = self.build()
        handle = system.submit(move("item-0", "item-1", 10))
        run_to_decision(system, handle)
        system.run_for(2.0)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-0") == 90
        assert system.read_item("item-1") == 110
        assert system.network.stats.duplicated > 0

    def test_sequential_increments_exact(self):
        system = self.build()
        for _ in range(10):
            handle = system.submit(increment("item-2"))
            run_to_decision(system, handle)
            assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-2") == 110

    def test_metrics_not_inflated_by_duplicates(self):
        system = self.build()
        handle = system.submit(move("item-0", "item-1", 10))
        run_to_decision(system, handle)
        system.run_for(2.0)
        assert system.metrics.committed == 1
        assert system.metrics.submitted == 1

    def test_in_doubt_resolution_once_despite_duplicate_notifies(self):
        system = self.build()
        system.submit(move("item-0", "item-1", 10))
        system.run_for(0.05)
        system.crash_site("site-0")
        system.run_for(2.0)
        system.recover_site("site-0")
        system.run_for(8.0)
        # Duplicated OutcomeNotify/Ack traffic must not corrupt the
        # final state or the counters' balance.
        assert system.read_item("item-1") in (100, 110)
        assert system.total_polyvalues() == 0
        assert (
            system.metrics.polyvalues_resolved
            == system.metrics.polyvalues_installed
        )
        assert system.outcome_bookkeeping_size() == 0

    def test_workload_storm_with_duplication_serial_equivalent(self):
        from repro.workloads.runner import ExperimentRunner

        values = {item: 1 for item in make_item_ids(10)}
        system = DistributedSystem.build(
            sites=3, items=values, seed=31, duplicate_probability=0.4
        )
        workload = RandomUpdateWorkload(
            system, WorkloadConfig(update_rate=10), seed=31
        )
        runner = ExperimentRunner(
            system, workload=workload, initial_values=values
        )
        report = runner.run(6.0, settle=10.0)
        assert report.converged
        assert report.serially_equivalent is True
