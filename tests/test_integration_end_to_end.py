"""End-to-end integration: workload streams under failure storms.

These tests run the whole stack — workload generator, 2PC, failure
injector, polyvalue installation, outcome propagation — for extended
simulated periods, then assert the global invariants the paper's design
promises:

1. *Convergence*: after all failures recover, every polyvalue resolves
   and the bookkeeping empties (section 3.3's garbage-collection claim).
2. *Consistency*: the final database state equals the state obtained by
   re-executing exactly the committed transactions in commit order
   against a fresh single-node database (atomicity + serialisability).
3. *Availability*: transactions keep committing while failures are
   outstanding (the mechanism's raison d'être).
"""

import pytest

from repro.core.polytransaction import execute
from repro.core.polyvalue import is_polyvalue
from repro.net.failures import CrashPlan, ScriptedFailures, RandomFailures
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.generator import (
    RandomUpdateWorkload,
    WorkloadConfig,
    make_item_ids,
)


def build_system(items=18, sites=3, seed=0, **kwargs):
    values = {item: 1 for item in make_item_ids(items)}
    return DistributedSystem.build(sites=sites, items=values, seed=seed, **kwargs)


def replay_committed(system, handles, initial_values):
    """Re-execute committed transactions serially, in commit order."""
    committed = sorted(
        (h for h in handles if h.status is TxnStatus.COMMITTED),
        key=lambda h: h.decided_at,
    )
    state = dict(initial_values)
    for handle in committed:
        result = execute(handle.transaction.body, state)
        state.update(result.merged_writes(state))
    return state


class TestConvergence:
    def run_storm(self, seed):
        # Slow links (50 ms) stretch each transaction's commit window to
        # a couple hundred milliseconds, so the scheduled crashes land
        # inside in-doubt windows often enough to exercise polyvalues.
        system = build_system(seed=seed, base_latency=0.05, jitter=0.02)
        workload = RandomUpdateWorkload(
            system,
            WorkloadConfig(update_rate=12, dependency_mean=1),
            seed=seed,
        )
        plans = [
            CrashPlan(f"site-{index % 3}", at=1.0 + 1.3 * index, duration=1.0)
            for index in range(9)
        ]
        ScriptedFailures(system.sim, system, plans)
        workload.start()
        system.run_for(14.0)
        workload.stop()
        # Let everything settle: outstanding decisions, queries, GC.
        system.run_for(30.0)
        return system, workload

    def test_all_transactions_decided(self):
        system, workload = self.run_storm(seed=101)
        pending = [
            h for h in workload.handles if h.status is TxnStatus.PENDING
        ]
        assert pending == []

    def test_all_polyvalues_resolved(self):
        system, workload = self.run_storm(seed=101)
        assert system.total_polyvalues() == 0, system.polyvalued_items()

    def test_bookkeeping_empty(self):
        system, workload = self.run_storm(seed=101)
        assert system.outcome_bookkeeping_size() == 0
        for site in system.sites.values():
            assert site.runtime.locks.locked_items() == frozenset()
            assert not site.participant.blocked_transactions()

    def test_polyvalues_were_actually_exercised(self):
        system, workload = self.run_storm(seed=101)
        assert system.metrics.polyvalues_installed > 0
        assert (
            system.metrics.polyvalues_resolved
            == system.metrics.polyvalues_installed
        )

    def test_final_state_matches_serial_replay(self):
        system, workload = self.run_storm(seed=101)
        initial = {item: 1 for item in make_item_ids(18)}
        expected = replay_committed(system, workload.handles, initial)
        actual = system.database_state()
        assert actual == expected

    def test_storm_is_deterministic(self):
        first_system, first_workload = self.run_storm(seed=202)
        second_system, second_workload = self.run_storm(seed=202)
        assert (
            first_system.database_state() == second_system.database_state()
        )
        assert (
            first_system.metrics.summary() == second_system.metrics.summary()
        )


class TestAvailabilityDuringFailure:
    def test_commits_continue_while_site_down(self):
        system = build_system(seed=303)
        workload = RandomUpdateWorkload(
            system, WorkloadConfig(update_rate=10), seed=303
        )
        workload.start()
        system.run_for(1.0)
        committed_before = system.metrics.committed
        system.crash_site("site-0")
        system.run_for(5.0)
        committed_during = system.metrics.committed - committed_before
        # Roughly 2/3 of items are on surviving sites; single-item
        # transactions among them keep committing.
        assert committed_during > 10
        system.recover_site("site-0")
        workload.stop()
        system.run_for(30.0)
        assert system.total_polyvalues() == 0


class TestRandomFailureInjection:
    def test_random_storm_converges(self):
        system = build_system(items=12, seed=404)
        workload = RandomUpdateWorkload(
            system, WorkloadConfig(update_rate=5), seed=404
        )
        RandomFailures(
            system.sim,
            system,
            system.rng.fork("failures"),
            crash_rate=0.08,
            mean_repair=1.5,
            sites=sorted(system.sites),
        )
        workload.start()
        system.run_for(20.0)
        workload.stop()
        # Failures keep arriving (the injector never stops), so allow a
        # long quiet period for every outage to recover and resolve:
        # stop injecting by running to a point where all sites are up.
        for _ in range(200):
            system.run_for(1.0)
            if all(
                system.network.is_up(site) for site in system.sites
            ) and system.total_polyvalues() == 0:
                break
        assert system.total_polyvalues() == 0
        pending = [
            h for h in workload.handles if h.status is TxnStatus.PENDING
        ]
        assert pending == []

    def test_serial_equivalence_after_random_storm(self):
        system = build_system(items=12, seed=505)
        workload = RandomUpdateWorkload(
            system, WorkloadConfig(update_rate=5), seed=505
        )
        RandomFailures(
            system.sim,
            system,
            system.rng.fork("failures"),
            crash_rate=0.05,
            mean_repair=1.0,
            sites=sorted(system.sites),
        )
        workload.start()
        system.run_for(15.0)
        workload.stop()
        for _ in range(200):
            system.run_for(1.0)
            if all(
                system.network.is_up(site) for site in system.sites
            ) and system.total_polyvalues() == 0:
                break
        initial = {item: 1 for item in make_item_ids(12)}
        expected = replay_committed(system, workload.handles, initial)
        assert system.database_state() == expected
