"""Tests for the inventory/process-control application (repro.workloads.inventory)."""

import pytest

from repro.core.polyvalue import is_polyvalue
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.inventory import (
    InventoryWorkload,
    order,
    rebalance,
    reorder_check,
    restock,
    stock_item,
    stock_items,
    stock_never_negative,
)

from tests.conftest import run_to_decision

WAREHOUSES = ["east", "west"]
PRODUCTS = ["widget", "gear"]


def depot(stock=50, seed=5):
    items = {item: stock for item in stock_items(WAREHOUSES, PRODUCTS)}
    return DistributedSystem.build(sites=3, items=items, seed=seed)


class TestPureHelpers:
    def test_stock_item_naming(self):
        assert stock_item("east", "widget") == "stock:east:widget"

    def test_stock_items_cross_product(self):
        assert len(stock_items(WAREHOUSES, PRODUCTS)) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            order("east", "widget", 0)
        with pytest.raises(ValueError):
            restock("east", "widget", -1)
        with pytest.raises(ValueError):
            rebalance("east", "west", "widget", 0)


class TestOperations:
    def test_order_ships_and_decrements(self):
        system = depot()
        handle = system.submit(order("east", "widget", 10))
        run_to_decision(system, handle)
        assert handle.outputs["shipped"] is True
        assert system.read_item(stock_item("east", "widget")) == 40

    def test_order_declines_when_short(self):
        system = depot(stock=3)
        handle = system.submit(order("east", "widget", 10))
        run_to_decision(system, handle)
        assert handle.outputs["shipped"] is False
        assert system.read_item(stock_item("east", "widget")) == 3

    def test_restock(self):
        system = depot()
        handle = system.submit(restock("west", "gear", 25))
        run_to_decision(system, handle)
        assert system.read_item(stock_item("west", "gear")) == 75

    def test_rebalance_moves_stock(self):
        system = depot()
        handle = system.submit(rebalance("east", "west", "widget", 20))
        run_to_decision(system, handle)
        assert handle.outputs["moved"] is True
        assert system.read_item(stock_item("east", "widget")) == 30
        assert system.read_item(stock_item("west", "widget")) == 70


NEUTRAL_SITE = "site-2"  # holds only stock:west:gear, no widget items


def crash_rebalance_in_window(system, product="widget"):
    """Interrupt an east->west rebalance at the in-doubt moment.

    The rebalance is coordinated at a *neutral* site that stores none
    of the widget stock, so crashing it leaves both widget items'
    home sites up — holding polyvalues, exactly the paper's scenario.
    """
    handle = system.submit(
        rebalance("east", "west", product, 20), at=NEUTRAL_SITE
    )
    system.run_for(0.05)
    system.crash_site(NEUTRAL_SITE)
    system.run_for(2.0)
    return NEUTRAL_SITE, handle


class TestReorderUnderUncertainty:
    def test_total_certain_despite_rebalance_uncertainty(self):
        # A rebalance moves stock *between* warehouses: the TOTAL is the
        # same under both outcomes, so the reorder check stays exact.
        system = depot(stock=50)
        crash_rebalance_in_window(system)
        assert is_polyvalue(system.read_item(stock_item("east", "widget")))
        handle = system.submit(
            reorder_check(WAREHOUSES, "widget", reorder_point=30)
        )
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert handle.outputs["reorder"] is False
        assert handle.outputs["certainly_low"] is False

    def test_order_uncertainty_triggers_conservative_reorder(self):
        # An interrupted *order* (stock leaves the system) makes the
        # total uncertain; near the reorder point the conservative
        # trigger fires while "certainly_low" stays False.
        system = depot(stock=16)  # east 16 + west 16 = 32, point 30
        source = stock_item("east", "widget")
        system.submit(order("east", "widget", 5), at=NEUTRAL_SITE)
        system.run_for(0.05)
        system.crash_site(NEUTRAL_SITE)
        system.run_for(2.0)
        assert is_polyvalue(system.read_item(source))  # {11 if T, 16 if ~T}
        handle = system.submit(
            reorder_check(WAREHOUSES, "widget", reorder_point=30)
        )
        run_to_decision(system, handle)
        assert handle.outputs["reorder"] is True  # might be 27 < 30
        assert handle.outputs["certainly_low"] is False  # might be 32

    def test_stock_never_negative_through_failures(self):
        system = depot(stock=10)
        crash_rebalance_in_window(system)
        for _ in range(4):
            handle = system.submit(order("east", "widget", 4))
            run_to_decision(system, handle)
        assert stock_never_negative(system.database_state())


class TestWorkloadDriver:
    def test_stream_keeps_invariant(self):
        system = depot(stock=30)
        workload = InventoryWorkload(system, WAREHOUSES, PRODUCTS, seed=17)
        for _ in range(30):
            workload.submit_one()
            system.run_for(0.3)
        system.run_for(3.0)
        assert stock_never_negative(system.database_state())
        decided = [
            h for h in workload.handles if h.status is not TxnStatus.PENDING
        ]
        assert len(decided) == 30
