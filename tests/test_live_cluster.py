"""LiveCluster: the polyvalue protocol on wall-clock asyncio sockets.

These tests exercise real TCP frames, real ``call_later`` timers, and
real durable checkpoint files — the same state machines the simulator
drives, but nothing simulated.  Timeouts in the configs are shrunken so
the wait-timeout/outcome-query paths fire within test budgets.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.live import ClusterThread, LiveCluster, LiveClusterError
from repro.live.client import poll_txn, request, transfer_script
from repro.txn.config import ProtocolConfig
from repro.txn.protocol import Complete, OutcomeNotify
from repro.txn.timeouts import TimeoutPolicy
from repro.txn.transaction import TxnStatus


def fast_config() -> ProtocolConfig:
    return ProtocolConfig(
        wait_timeout=0.2,
        outcome_query_interval=0.25,
        timeout_policy=TimeoutPolicy(),
    )


def run(coro):
    return asyncio.run(coro)


class TestLiveCommit:
    def test_transfer_commits_and_applies(self):
        async def scenario():
            cluster = LiveCluster(sites=3, seed=1)
            await cluster.start()
            try:
                handle = cluster.submit_script(
                    transfer_script("acct-0", "acct-1", 7)
                )
                assert await cluster.wait_decided(handle, timeout=10.0)
                assert handle.status is TxnStatus.COMMITTED
                assert await cluster.wait_converged(timeout=10.0)
                return (
                    cluster.read_item("acct-0"),
                    cluster.read_item("acct-1"),
                    cluster.runtime.stats.as_dict(),
                )
            finally:
                await cluster.stop()

        a, b, stats = run(scenario())
        assert (a, b) == (93, 107)
        assert stats["sent"] > 0
        assert stats["handler_errors"] == 0

    def test_paxos_protocol_runs_live(self):
        async def scenario():
            cluster = LiveCluster(sites=3, seed=3, protocol="paxos")
            await cluster.start()
            try:
                handle = cluster.submit_script(
                    transfer_script("acct-0", "acct-2", 5)
                )
                assert await cluster.wait_decided(handle, timeout=10.0)
                assert handle.status is TxnStatus.COMMITTED
                assert await cluster.wait_converged(timeout=15.0)
                return cluster.read_item("acct-0"), cluster.read_item("acct-2")
            finally:
                await cluster.stop()

        assert run(scenario()) == (95, 105)

    def test_pathsensitive_is_rejected_as_sim_only(self):
        with pytest.raises(LiveClusterError):
            LiveCluster(sites=3, protocol="pathsensitive")

    def test_unknown_item_and_site_rejected(self):
        async def scenario():
            cluster = LiveCluster(sites=2, seed=0)
            await cluster.start()
            try:
                with pytest.raises(LiveClusterError):
                    cluster.submit_script(
                        transfer_script("acct-0", "acct-1", 1), at="site-9"
                    )
                with pytest.raises(LiveClusterError):
                    cluster.crash("site-9")
            finally:
                await cluster.stop()

        run(scenario())


class TestLiveCrashRecovery:
    def test_coordinator_crash_restart_from_durable_files(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(
                sites=3, seed=1, config=fast_config(), data_dir=str(tmp_path)
            )
            await cluster.start()
            try:
                first = cluster.submit_script(
                    transfer_script("acct-0", "acct-1", 7)
                )
                assert await cluster.wait_decided(first, timeout=10.0)
                assert first.status is TxnStatus.COMMITTED

                second = cluster.submit_script(
                    transfer_script("acct-0", "acct-3", 3), at="site-0"
                )
                cluster.crash("site-0")
                assert second.status is TxnStatus.ABORTED
                assert "presumed abort" in second.abort_reason
                assert cluster.down_sites() == ["site-0"]

                await asyncio.sleep(0.3)
                cluster.restart("site-0")
                assert cluster.down_sites() == []
                assert await cluster.wait_converged(timeout=15.0)
                return cluster.database_state()
            finally:
                await cluster.stop()

        state = run(scenario())
        # The committed transfer survives the crash (restored from the
        # checkpoint file); the aborted one leaves no trace.
        assert state["acct-0"] == 93
        assert state["acct-1"] == 107
        assert state["acct-3"] == 100
        files = sorted(p.name for p in tmp_path.glob("site-*.json"))
        assert files == [
            "site-site-0.json", "site-site-1.json", "site-site-2.json",
        ]

    def test_whole_cluster_restart_restores_state_from_disk(self, tmp_path):
        async def first_life():
            cluster = LiveCluster(sites=3, seed=1, data_dir=str(tmp_path))
            await cluster.start()
            try:
                handle = cluster.submit_script(
                    transfer_script("acct-0", "acct-1", 9)
                )
                assert await cluster.wait_decided(handle, timeout=10.0)
                assert await cluster.wait_converged(timeout=10.0)
                return cluster.database_state()
            finally:
                await cluster.stop()

        async def second_life():
            cluster = LiveCluster(sites=3, seed=1, data_dir=str(tmp_path))
            await cluster.start()
            try:
                return cluster.database_state()
            finally:
                await cluster.stop()

        before = run(first_life())
        after = run(second_life())
        assert after == before
        assert after["acct-0"] == 91

    def test_wait_timeout_installs_polyvalue_over_real_sockets(self):
        """The paper's §3.1 mechanism, live: a participant that misses
        Complete times out of the wait phase, installs a polyvalue, and
        the §3.3 outcome machinery resolves it once messages flow."""

        async def scenario():
            cluster = LiveCluster(sites=3, seed=4, config=fast_config())
            await cluster.start()
            try:
                cluster.runtime.set_fault(
                    lambda env: env.recipient == "site-2"
                    and isinstance(env.payload, (Complete, OutcomeNotify))
                )
                handle = cluster.submit_script(
                    transfer_script("acct-0", "acct-2", 6)
                )
                assert await cluster.wait_decided(handle, timeout=10.0)
                assert handle.status is TxnStatus.COMMITTED

                deadline = cluster.runtime.now + 8.0
                while (
                    cluster.total_polyvalues() == 0
                    and cluster.runtime.now < deadline
                ):
                    await asyncio.sleep(0.02)
                polyvalued = cluster.describe_item("acct-2")["polyvalue"]

                cluster.runtime.set_fault(None)
                converged = await cluster.wait_converged(timeout=15.0)
                return polyvalued, converged, cluster.read_item("acct-2")
            finally:
                await cluster.stop()

        polyvalued, converged, value = run(scenario())
        assert polyvalued, "site-2 should have installed a polyvalue"
        assert converged
        assert value == 106


class TestHttpApi:
    def test_full_http_surface(self):
        with ClusterThread(http=True, sites=3, seed=2,
                           config=fast_config()) as ct:
            base = f"http://127.0.0.1:{ct.port}"

            health = request(base, "/health")
            assert health["ok"] and health["sites"] == 3

            state = request(base, "/state")
            assert set(state["sites"]) == {"site-0", "site-1", "site-2"}

            committed = request(
                base, "/txn", method="POST",
                body={"script": transfer_script("acct-0", "acct-1", 4),
                      "wait": True},
            )
            assert committed["status"] == "committed"
            assert committed["decided"] is True

            item = request(base, "/item/acct-1")
            assert item["value"] == 104 and item["site"] == "site-1"

            pending = request(
                base, "/txn", method="POST",
                body={"script": transfer_script("acct-0", "acct-3", 2),
                      "at": "site-0"},
            )
            request(base, "/crash", method="POST", body={"site": "site-0"})
            assert request(base, "/health")["down"] == ["site-0"]
            request(base, "/restart", method="POST", body={"site": "site-0"})

            outcome = poll_txn(base, pending["txn"], timeout=15.0)
            assert outcome["status"] == "aborted"
            assert "presumed abort" in outcome["reason"]

    def test_http_error_paths(self):
        with ClusterThread(http=True, sites=2, seed=0) as ct:
            base = f"http://127.0.0.1:{ct.port}"
            for path, method, body, code in [
                ("/item/nope", "GET", None, "404"),
                ("/txn/nope", "GET", None, "404"),
                ("/nothing", "GET", None, "404"),
                ("/crash", "POST", {"site": "zz"}, "404"),
                ("/crash", "POST", {}, "400"),
                ("/txn", "POST", {}, "400"),
                ("/txn", "POST", {"script": {"items": []}}, "400"),
            ]:
                with pytest.raises(Exception) as info:
                    request(base, path, method=method, body=body)
                assert code in str(info.value)
