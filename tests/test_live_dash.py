"""Tests for the live dashboard (repro.obs.live)."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.events import EventBus
from repro.obs.live import (
    DASH_PAGE,
    DashboardServer,
    LiveState,
    SSEBroker,
    serve_dash,
)
from repro.txn.system import DistributedSystem

from tests.conftest import move, run_to_decision


class TestLiveState:
    def test_folds_a_real_crash_scenario(self):
        state = LiveState()
        system = DistributedSystem.build(
            sites=3, items={"a": 10, "b": 20, "c": 30}, seed=9, jitter=0.0
        )
        system.bus.subscribe(state.on_event)
        system.submit(move("a", "b", 3))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.0)
        snap = state.snapshot()
        assert snap["txns"]["submitted"] == 1
        assert snap["sites"]["crashes"] == 1
        assert snap["in_doubt"]["open"] == 1
        (window,) = snap["in_doubt"]["open_windows"]
        assert window["site"] == "site-1"
        assert snap["polyvalues"]["current"] >= 1
        # Recovery closes the window and resolves the polyvalues.
        system.recover_site("site-0")
        system.run_for(5.0)
        snap = state.snapshot()
        assert snap["in_doubt"]["open"] == 0
        assert snap["polyvalues"]["current"] == 0
        assert snap["sites"]["recoveries"] == 1
        assert json.dumps(snap)  # JSON-safe end to end

    def test_commit_rate(self):
        state = LiveState()
        bus = EventBus()
        bus.subscribe(state.on_event)
        assert state.snapshot()["commit_rate"] is None
        bus.emit("txn.committed", time=0.1, txn="t1")
        bus.emit("txn.committed", time=0.2, txn="t2")
        bus.emit("txn.aborted", time=0.3, txn="t3")
        assert state.snapshot()["commit_rate"] == pytest.approx(2 / 3)

    def test_campaign_progress_resets_per_start(self):
        state = LiveState()
        bus = EventBus()
        bus.subscribe(state.on_event)
        for round_index in range(2):
            bus.emit("campaign.start", time=0.0, label="chaos", trials=2,
                     jobs=4, chunks=2)
            bus.emit("campaign.trial", time=0.1, label="chaos", index=0,
                     ok=True)
            bus.emit("campaign.trial", time=0.2, label="chaos", index=1,
                     ok=False, error="boom")
            bus.emit("campaign.done", time=0.3, label="chaos", trials=2,
                     failures=1)
        entry = state.snapshot()["campaigns"]["chaos"]
        # The second campaign.start reset the bar — no accumulation.
        assert entry["done"] == 2 and entry["trials"] == 2
        assert entry["ok"] == 1 and entry["failed"] == 1
        assert entry["jobs"] == 4 and entry["finished"] is True
        assert entry["failed_indices"] == [1]

    def test_recent_ring_is_bounded(self):
        state = LiveState(keep_events=5)
        bus = EventBus()
        bus.subscribe(state.on_event)
        for index in range(20):
            bus.emit("campaign.trial", time=float(index), label="x",
                     index=index, ok=True)
        recent = state.snapshot()["recent"]
        assert len(recent) == 5
        assert recent[-1]["index"] == 19


class TestSSEBroker:
    def test_fan_out_and_detach(self):
        broker = SSEBroker()
        bus = EventBus()
        bus.subscribe(broker.on_event)
        a, b = broker.attach(), broker.attach()
        assert broker.clients == 2
        bus.emit("txn.committed", time=0.5, txn="t1")
        assert json.loads(a.get_nowait())["name"] == "txn.committed"
        assert json.loads(b.get_nowait())["name"] == "txn.committed"
        broker.detach(b)
        bus.emit("txn.aborted", time=0.6, txn="t2")
        assert json.loads(a.get_nowait())["name"] == "txn.aborted"
        assert b.empty()

    def test_slow_client_sheds_oldest_never_blocks(self):
        broker = SSEBroker(queue_size=3)
        bus = EventBus()
        bus.subscribe(broker.on_event)
        client = broker.attach()
        for index in range(10):
            bus.emit("campaign.trial", time=float(index), label="x",
                     index=index, ok=True)
        frames = []
        while not client.empty():
            frames.append(json.loads(client.get_nowait()))
        # Bounded at 3, keeping the newest frames.
        assert [frame["index"] for frame in frames] == [7, 8, 9]


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read()


class TestDashboardServer:
    @pytest.fixture()
    def server(self):
        server = DashboardServer(port=0)  # ephemeral port
        server.start()
        yield server
        server.stop()

    def test_healthz_page_and_state(self, server):
        status, body = _get(server.url + "healthz")
        assert status == 200 and body == b"ok\n"
        status, body = _get(server.url)
        assert status == 200
        assert b"live campaign telemetry" in body
        assert body.decode("utf-8") == DASH_PAGE
        status, body = _get(server.url + "state.json")
        assert status == 200
        assert json.loads(body)["txns"] == {
            "submitted": 0, "committed": 0, "aborted": 0,
        }
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "nope")
        assert excinfo.value.code == 404

    def test_state_follows_a_subscribed_system(self, server):
        system = DistributedSystem.build(
            sites=3, items={"a": 10, "b": 0}, seed=3, jitter=0.0
        )
        server.subscribe(system.bus)
        handle = system.submit(move("a", "b", 4))
        run_to_decision(system, handle)
        _, body = _get(server.url + "state.json")
        snapshot = json.loads(body)
        assert snapshot["txns"]["committed"] == 1
        assert snapshot["events_seen"] > 0

    def test_sse_streams_hello_then_live_frames(self, server):
        bus = EventBus()
        server.subscribe(bus)
        with socket.create_connection(
            (server.server_address[0], server.port), timeout=5.0
        ) as conn:
            conn.sendall(
                b"GET /events HTTP/1.1\r\n"
                b"Host: dash\r\nAccept: text/event-stream\r\n\r\n"
            )
            conn_file = conn.makefile("rb")
            status_line = conn_file.readline()
            assert b"200" in status_line
            headers = b""
            while True:
                line = conn_file.readline()
                headers += line
                if line in (b"\r\n", b"\n", b""):
                    break
            assert b"text/event-stream" in headers

            def frames(count):
                found = []
                while len(found) < count:
                    line = conn_file.readline()
                    if line.startswith(b"data: "):
                        found.append(json.loads(line[len(b"data: "):]))
                return found

            (hello,) = frames(1)
            assert hello["name"] == "dash.hello"
            assert "state" in hello
            bus.emit("campaign.trial", time=0.1, label="chaos", index=0,
                     ok=True)
            (frame,) = frames(1)
            assert frame["name"] == "campaign.trial"
            assert frame["index"] == 0 and frame["ok"] is True


class TestServeDash:
    def test_chaos_scenario_serves_live_campaign_events(self):
        ready = threading.Event()
        captured = {}

        def on_start(server):
            captured["url"] = server.url

        result = {}

        def run():
            result["server"] = serve_dash(
                port=0, scenario="chaos", seed=11, trials=1, jobs=1,
                duration=6.0, ready=ready, on_start=on_start,
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=10.0)
        url = captured["url"]
        status, _ = _get(url + "healthz")
        assert status == 200
        deadline = threading.Event()
        for _ in range(40):  # wait for the first campaign to land
            _, body = _get(url + "state.json")
            snapshot = json.loads(body)
            if snapshot["campaigns"].get("chaos", {}).get("done"):
                break
            deadline.wait(0.1)
        assert snapshot["campaigns"]["chaos"]["done"] >= 1
        assert snapshot["campaigns"]["chaos"]["failed"] == 0
        thread.join(timeout=15.0)
        assert not thread.is_alive()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown serve-dash scenario"):
            serve_dash(scenario="nope")
