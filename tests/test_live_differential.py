"""Differential test: SimRuntime and AsyncioRuntime agree (satellite of
the Runtime seam).

The same scripted workload — compiled by the same transaction-script
DSL, placed by the same round-robin catalog — runs once on the
simulator and once on real asyncio sockets, failure-free.  Both
runtimes must produce identical per-transaction decisions and an
identical final database state.  This is the interface contract of the
Runtime seam: protocol behaviour is a function of the state machines,
not of which clock/transport drives them.

Timing-dependent *intermediate* states (who installs a polyvalue when)
legitimately differ across runtimes; decided outcomes and settled
values must not.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.live import LiveCluster
from repro.live.txnscript import compile_script
from repro.txn.config import ProtocolConfig, config_for_protocol
from repro.txn.system import DistributedSystem
from repro.txn.timeouts import TimeoutPolicy

ITEMS = {f"acct-{i}": 100 for i in range(6)}

#: A failure-free scripted workload touching every site: transfers,
#: a three-item rebalance, and a clamp.  Each entry is (script, at).
WORKLOAD = [
    (
        {
            "label": "t-01",
            "items": ["acct-0", "acct-1"],
            "ops": [
                {"write": "acct-0", "expr": ["-", ["read", "acct-0"], 7]},
                {"write": "acct-1", "expr": ["+", ["read", "acct-1"], 7]},
            ],
        },
        None,
    ),
    (
        {
            "label": "t-02",
            "items": ["acct-2", "acct-3", "acct-4"],
            "ops": [
                {"write": "acct-2", "expr": ["-", ["read", "acct-2"], 10]},
                {"write": "acct-3", "expr": ["+", ["read", "acct-3"], 4]},
                {"write": "acct-4", "expr": ["+", ["read", "acct-4"], 6]},
            ],
        },
        "site-1",
    ),
    (
        {
            "label": "t-03",
            "items": ["acct-5"],
            "ops": [
                {
                    "write": "acct-5",
                    "expr": ["max", ["-", ["read", "acct-5"], 150], 0],
                }
            ],
        },
        None,
    ),
    (
        {
            "label": "t-04",
            "items": ["acct-1", "acct-5"],
            "ops": [
                {"write": "acct-1", "expr": ["-", ["read", "acct-1"], 2]},
                {"write": "acct-5", "expr": ["+", ["read", "acct-5"], 2]},
            ],
        },
        "site-2",
    ),
]


def sim_decisions(protocol: str):
    """Run the workload on the simulator; (label -> status, final db)."""
    config = config_for_protocol(protocol, ProtocolConfig())
    system = DistributedSystem.build(
        sites=3, items=ITEMS, seed=11, config=config, jitter=0.0
    )
    decisions = {}
    for script, at in WORKLOAD:
        handle = system.submit(compile_script(script), at=at)
        system.run_for(5.0)
        decisions[script["label"]] = handle.status.value
    assert system.settle(max_time=60.0)
    return decisions, system.database_state()


def live_decisions(protocol: str):
    """Run the workload on asyncio sockets; (label -> status, final db)."""

    async def scenario():
        config = config_for_protocol(
            protocol, ProtocolConfig(timeout_policy=TimeoutPolicy())
        )
        cluster = LiveCluster(
            sites=3, items=ITEMS, seed=11, protocol=protocol, config=config
        )
        await cluster.start()
        try:
            decisions = {}
            for script, at in WORKLOAD:
                handle = cluster.submit_script(script, at=at)
                assert await cluster.wait_decided(handle, timeout=15.0)
                decisions[script["label"]] = handle.status.value
            assert await cluster.wait_converged(timeout=15.0)
            return decisions, cluster.database_state()
        finally:
            await cluster.stop()

    return asyncio.run(scenario())


@pytest.mark.parametrize("protocol", ["polyvalue", "paxos"])
def test_sim_and_live_agree_on_decisions_and_state(protocol):
    sim_outcomes, sim_state = sim_decisions(protocol)
    live_outcomes, live_state = live_decisions(protocol)
    assert live_outcomes == sim_outcomes
    assert live_state == sim_state


def test_the_workload_actually_commits():
    """Guard against the differential test passing vacuously (both
    runtimes agreeing on all-aborted would satisfy the comparison)."""
    outcomes, state = sim_decisions("polyvalue")
    assert set(outcomes.values()) == {"committed"}
    assert state["acct-0"] == 93
    assert state["acct-5"] == 2  # max(100-150, 0) then +2
