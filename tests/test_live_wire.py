"""Wire codec and transaction-script DSL for the live cluster."""

from __future__ import annotations

import json

import pytest

from repro.core.conditions import Condition
from repro.core.polytransaction import execute
from repro.core.polyvalue import Polyvalue, is_polyvalue
from repro.live.txnscript import (
    TransactionScriptError,
    compile_script,
    validate_script,
)
from repro.live.wire import (
    MESSAGE_TYPES,
    WireError,
    decode_envelope,
    encode_envelope,
    encode_message,
    roundtrip,
)
from repro.net.message import Envelope
from repro.txn import protocol
from repro.txn.paxos import PaxosStage, Phase1b, Phase2a
from repro.txn.pathsensitive import LocalApply


class TestWireRoundtrip:
    def test_every_protocol_message_type_is_registered(self):
        assert "StageRequest" in MESSAGE_TYPES
        assert "Phase2b" in MESSAGE_TYPES
        assert len(MESSAGE_TYPES) == 18

    @pytest.mark.parametrize(
        "message",
        [
            protocol.ReadRequest(txn="T1@s", items=("a", "b")),
            protocol.ReadReply(
                txn="T1@s", site="s1", ok=True, values={"a": 3}, reason=""
            ),
            protocol.StageRequest(
                txn="T1@s", coordinator="s0", writes={"a": 4}
            ),
            protocol.Ready(txn="T1@s", site="s1"),
            protocol.Refuse(txn="T1@s", site="s1", reason="lock"),
            protocol.Complete(txn="T1@s"),
            protocol.Abort(txn="T1@s"),
            protocol.OutcomeQuery(txn="T1@s", requester="s2"),
            protocol.OutcomeNotify(txn="T1@s", committed=True, origin="s0"),
            protocol.OutcomeAck(txn="T1@s", site="s2"),
            PaxosStage(
                txn="T1@s",
                coordinator="s0",
                writes={"a": 4},
                participants=("s0", "s1"),
                acceptors=("s0", "s1", "s2"),
                leader="s0",
            ),
            Phase1b(
                txn="T1@s",
                ballot=3,
                acceptor="s2",
                accepted={"s1": (2, "yes")},
            ),
            Phase2a(
                txn="T1@s", instance="s1", ballot=0, vote="yes", leader="s0"
            ),
            LocalApply(txn="T1@s", item="a", delta=2, origin="s0"),
        ],
        ids=lambda m: type(m).__name__,
    )
    def test_message_survives_json(self, message):
        assert roundtrip(message) == message

    def in_doubt(self, new, old, txn="T9@s0"):
        return Polyvalue(
            [(new, Condition.of(txn)), (old, Condition.not_of(txn))]
        )

    def test_polyvalue_payload_survives_json(self):
        poly = self.in_doubt(7, 5)
        reply = protocol.ReadReply(
            txn="T1@s", site="s1", ok=True, values={"a": poly}, reason=""
        )
        back = roundtrip(reply)
        value = back.values["a"]
        assert is_polyvalue(value)
        assert value == poly

    def test_envelope_roundtrip(self):
        envelope = Envelope(
            sender="s0",
            recipient="s1",
            payload=protocol.Complete(txn="T1@s0"),
            sent_at=1.25,
        )
        back = decode_envelope(encode_envelope(envelope))
        assert (back.sender, back.recipient, back.sent_at) == ("s0", "s1", 1.25)
        assert back.payload == envelope.payload

    def test_unregistered_type_rejected_on_encode(self):
        with pytest.raises(WireError):
            encode_message(object())

    def test_unknown_type_rejected_on_decode(self):
        from repro.live.wire import decode_message

        with pytest.raises(WireError):
            decode_message({"type": "EvilType", "fields": {}})

    def test_garbage_frame_rejected(self):
        with pytest.raises(WireError):
            decode_envelope(b"\xff\x00 not json")

    def test_tuples_and_mappings_keep_their_types(self):
        request = protocol.ReadRequest(txn="T1@s", items=("a",))
        back = roundtrip(request)
        assert isinstance(back.items, tuple)
        accepted = roundtrip(
            Phase1b(txn="T", ballot=1, acceptor="s", accepted={"x": (1, "no")})
        ).accepted
        assert isinstance(accepted["x"], tuple)


class TestTransactionScripts:
    def transfer(self):
        return {
            "label": "transfer",
            "items": ["a", "b"],
            "ops": [
                {"write": "a", "expr": ["-", ["read", "a"], 4]},
                {"write": "b", "expr": ["+", ["read", "b"], 4]},
            ],
        }

    def test_compiles_to_a_transaction(self):
        txn = compile_script(self.transfer())
        assert txn.items == ("a", "b")
        assert txn.label == "transfer"
        result = execute(txn.body, {"a": 10, "b": 1})
        assert result.merged_writes({}) == {"a": 6, "b": 5}

    def test_reads_observe_the_snapshot_and_last_write_wins(self):
        script = {
            "items": ["a"],
            "ops": [
                {"write": "a", "expr": ["+", ["read", "a"], 1]},
                {"write": "a", "expr": ["*", ["read", "a"], 10]},
            ],
        }
        result = execute(compile_script(script).body, {"a": 2})
        assert result.merged_writes({}) == {"a": 20}

    def test_min_max_and_const(self):
        script = {
            "items": ["a"],
            "ops": [
                {
                    "write": "a",
                    "expr": ["max", ["read", "a"], ["const", 50], 10],
                }
            ],
        }
        result = execute(compile_script(script).body, {"a": 3})
        assert result.merged_writes({}) == {"a": 50}

    def test_polyvalued_read_forks_the_script(self):
        script = {
            "items": ["a", "b"],
            "ops": [{"write": "b", "expr": ["+", ["read", "a"], 1]}],
        }
        poly = Polyvalue(
            [(10, Condition.of("T9@s0")), (20, Condition.not_of("T9@s0"))]
        )
        result = execute(compile_script(script).body, {"a": poly, "b": 0})
        assert is_polyvalue(result.merged_writes({"b": 0})["b"])

    def test_scripts_serialize_as_json(self):
        script = self.transfer()
        assert json.loads(json.dumps(script)) == script

    @pytest.mark.parametrize(
        "script",
        [
            {"ops": []},
            {"items": [], "ops": []},
            {"items": ["a"], "ops": [{"write": "a"}]},
            {"items": ["a"], "ops": [{"write": "zz", "expr": 1}]},
            {"items": ["a"], "ops": [], "label": 7},
            {"items": [3], "ops": []},
        ],
    )
    def test_malformed_scripts_rejected(self, script):
        with pytest.raises(TransactionScriptError):
            validate_script(script)

    @pytest.mark.parametrize(
        "expr", [[], ["read"], ["read", 3], ["nope", 1], ["+"]]
    )
    def test_malformed_expressions_rejected_at_execution(self, expr):
        script = {"items": ["a"], "ops": [{"write": "a", "expr": expr}]}
        with pytest.raises(TransactionScriptError):
            execute(compile_script(script).body, {"a": 1})
