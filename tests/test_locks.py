"""Unit tests for the lock manager (repro.db.locks)."""

import pytest

from repro.core.errors import LockError
from repro.db.locks import LockManager, LockMode


class TestBasicAcquisition:
    def test_acquire_read_on_free_item(self):
        locks = LockManager()
        assert locks.try_acquire("T1", "a", LockMode.READ)
        assert locks.mode_of("a") is LockMode.READ

    def test_acquire_write_on_free_item(self):
        locks = LockManager()
        assert locks.try_acquire("T1", "a", LockMode.WRITE)
        assert locks.mode_of("a") is LockMode.WRITE

    def test_shared_reads_allowed(self):
        locks = LockManager()
        assert locks.try_acquire("T1", "a", LockMode.READ)
        assert locks.try_acquire("T2", "a", LockMode.READ)
        assert locks.holders("a") == frozenset({"T1", "T2"})

    def test_write_conflicts_with_read(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.READ)
        assert not locks.try_acquire("T2", "a", LockMode.WRITE)
        assert locks.conflicts == 1

    def test_read_conflicts_with_write(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.WRITE)
        assert not locks.try_acquire("T2", "a", LockMode.READ)

    def test_write_conflicts_with_write(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.WRITE)
        assert not locks.try_acquire("T2", "a", LockMode.WRITE)

    def test_reacquire_same_mode_is_noop(self):
        locks = LockManager()
        assert locks.try_acquire("T1", "a", LockMode.READ)
        assert locks.try_acquire("T1", "a", LockMode.READ)
        assert locks.holders("a") == frozenset({"T1"})

    def test_acquire_raises_on_conflict(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.WRITE)
        with pytest.raises(LockError):
            locks.acquire("T2", "a", LockMode.WRITE)


class TestUpgrade:
    def test_sole_reader_upgrades(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.READ)
        assert locks.try_acquire("T1", "a", LockMode.WRITE)
        assert locks.mode_of("a") is LockMode.WRITE

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.READ)
        locks.try_acquire("T2", "a", LockMode.READ)
        assert not locks.try_acquire("T1", "a", LockMode.WRITE)

    def test_read_request_while_holding_write_is_noop(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.WRITE)
        assert locks.try_acquire("T1", "a", LockMode.READ)
        assert locks.mode_of("a") is LockMode.WRITE


class TestRelease:
    def test_release_frees_item(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.WRITE)
        locks.release("T1", "a")
        assert not locks.is_locked("a")
        assert locks.try_acquire("T2", "a", LockMode.WRITE)

    def test_release_one_of_shared_readers(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.READ)
        locks.try_acquire("T2", "a", LockMode.READ)
        locks.release("T1", "a")
        assert locks.holders("a") == frozenset({"T2"})

    def test_release_unheld_is_noop(self):
        locks = LockManager()
        locks.release("T1", "a")
        assert not locks.is_locked("a")

    def test_release_all(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.READ)
        locks.try_acquire("T1", "b", LockMode.WRITE)
        locks.try_acquire("T2", "c", LockMode.WRITE)
        locks.release_all("T1")
        assert locks.held_by("T1") == frozenset()
        assert not locks.is_locked("a")
        assert not locks.is_locked("b")
        assert locks.is_locked("c")


class TestQueries:
    def test_held_by(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.READ)
        locks.try_acquire("T1", "b", LockMode.WRITE)
        assert locks.held_by("T1") == frozenset({"a", "b"})

    def test_locked_items(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.READ)
        locks.try_acquire("T2", "b", LockMode.WRITE)
        assert locks.locked_items() == frozenset({"a", "b"})

    def test_mode_of_unlocked_is_none(self):
        assert LockManager().mode_of("a") is None

    def test_holders_of_unlocked_is_empty(self):
        assert LockManager().holders("a") == frozenset()


class TestTwoPhaseDiscipline:
    def test_no_wait_policy_never_blocks(self):
        # try_acquire returns immediately — there is no queueing state to
        # leak.  After the holder releases, a previously refused
        # transaction can retry successfully.
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.WRITE)
        assert not locks.try_acquire("T2", "a", LockMode.WRITE)
        locks.release_all("T1")
        assert locks.try_acquire("T2", "a", LockMode.WRITE)

    def test_conflict_counter_accumulates(self):
        locks = LockManager()
        locks.try_acquire("T1", "a", LockMode.WRITE)
        locks.try_acquire("T2", "a", LockMode.WRITE)
        locks.try_acquire("T3", "a", LockMode.READ)
        assert locks.conflicts == 2
