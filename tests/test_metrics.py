"""Unit tests for metrics (repro.metrics)."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.series import TimeSeries, mean, percentile, stddev


class TestTimeSeries:
    def test_record_and_last_value(self):
        series = TimeSeries()
        series.record(0.0, 1)
        series.record(2.0, 3)
        assert series.last_value() == 3
        assert len(series) == 2

    def test_empty_series(self):
        assert TimeSeries().last_value() is None

    def test_non_monotonic_time_rejected(self):
        series = TimeSeries()
        series.record(2.0, 1)
        with pytest.raises(ValueError):
            series.record(1.0, 2)

    def test_equal_times_allowed(self):
        series = TimeSeries()
        series.record(1.0, 1)
        series.record(1.0, 2)
        assert series.last_value() == 2

    def test_value_at(self):
        series = TimeSeries()
        series.record(1.0, 10)
        series.record(3.0, 20)
        assert series.value_at(0.5) is None
        assert series.value_at(1.0) == 10
        assert series.value_at(2.9) == 10
        assert series.value_at(3.0) == 20
        assert series.value_at(99.0) == 20

    def test_value_at_step_boundaries(self):
        # Right-continuity at every recorded instant: the value AT a
        # step is the new one, and just before it is still the old one.
        series = TimeSeries()
        series.record(0.0, 1)
        series.record(2.0, 2)
        series.record(4.0, 3)
        assert series.value_at(0.0) == 1
        assert series.value_at(2.0 - 1e-12) == 1
        assert series.value_at(2.0) == 2
        assert series.value_at(4.0 - 1e-12) == 2
        assert series.value_at(4.0) == 3

    def test_value_at_duplicate_timestamps_last_wins(self):
        # Several observations at one instant collapse to the last one,
        # matching last_value() and the step-function reading.
        series = TimeSeries()
        series.record(1.0, 10)
        series.record(1.0, 11)
        series.record(1.0, 12)
        series.record(2.0, 20)
        assert series.value_at(1.0) == 12
        assert series.value_at(1.5) == 12
        assert series.value_at(2.0) == 20

    def test_value_at_matches_linear_scan(self):
        # The bisect implementation must agree with the obvious scan.
        series = TimeSeries()
        times = [0.0, 0.5, 0.5, 1.25, 3.0, 3.0, 7.5]
        for index, time in enumerate(times):
            series.record(time, index)

        def scan(query):
            found = None
            for time, value in series.points:
                if time <= query:
                    found = value
            return found

        for query in (-1.0, 0.0, 0.25, 0.5, 1.0, 1.25, 2.99, 3.0, 7.5, 100.0):
            assert series.value_at(query) == scan(query), query

    def test_time_weighted_mean_step_function(self):
        series = TimeSeries()
        series.record(0.0, 0)
        series.record(5.0, 10)
        # [0,5): 0, [5,10): 10 -> mean over [0,10) is 5.
        assert series.time_weighted_mean(0.0, 10.0) == pytest.approx(5.0)

    def test_time_weighted_mean_window_inside(self):
        series = TimeSeries()
        series.record(0.0, 4)
        assert series.time_weighted_mean(2.0, 8.0) == pytest.approx(4.0)

    def test_time_weighted_mean_requires_coverage(self):
        series = TimeSeries()
        series.record(5.0, 1)
        with pytest.raises(ValueError):
            series.time_weighted_mean(0.0, 10.0)

    def test_time_weighted_mean_empty_window_rejected(self):
        series = TimeSeries()
        series.record(0.0, 1)
        with pytest.raises(ValueError):
            series.time_weighted_mean(3.0, 3.0)


class TestStatistics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stddev(self):
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=0.01)

    def test_stddev_singleton_is_zero(self):
        assert stddev([5]) == 0.0

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_percentile_bounds(self):
        values = [3, 1, 2]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 3

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestCollector:
    def test_polyvalue_running_count(self):
        metrics = MetricsCollector()
        metrics.polyvalue_installed(1.0)
        metrics.polyvalue_installed(2.0)
        metrics.polyvalue_resolved(3.0)
        assert metrics.current_polyvalues == 1
        assert metrics.polyvalues_installed == 2
        assert metrics.polyvalues_resolved == 1
        assert metrics.polyvalue_count.last_value() == 1

    def test_commit_rate(self):
        metrics = MetricsCollector()
        metrics.txn_committed(0.1)
        metrics.txn_committed(0.2)
        metrics.txn_aborted()
        assert metrics.commit_rate == pytest.approx(2 / 3)

    def test_commit_rate_no_decisions(self):
        assert MetricsCollector().commit_rate == 0.0

    def test_mean_commit_latency(self):
        metrics = MetricsCollector()
        assert metrics.mean_commit_latency is None
        metrics.txn_committed(0.1)
        metrics.txn_committed(0.3)
        assert metrics.mean_commit_latency == pytest.approx(0.2)

    def test_output_certainty_fraction(self):
        metrics = MetricsCollector()
        assert metrics.certain_output_fraction == 1.0
        metrics.output_produced(certain=True)
        metrics.output_produced(certain=True)
        metrics.output_produced(certain=False)
        assert metrics.certain_output_fraction == pytest.approx(2 / 3)

    def test_summary_keys(self):
        summary = MetricsCollector().summary()
        for key in (
            "committed",
            "aborted",
            "polyvalues_installed",
            "certain_output_fraction",
        ):
            assert key in summary
