"""Tests for Quine-McCluskey minimisation (repro.core.minimize)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import Condition, Literal
from repro.core.errors import ConditionError
from repro.core.minimize import literal_count, minimize, product_count

T1, T2, T3, T4 = (Condition.of(t) for t in ("T1", "T2", "T3", "T4"))


class TestBasics:
    def test_constants(self):
        assert minimize(Condition.true()).is_true()
        assert minimize(Condition.false()).is_false()

    def test_single_literal_unchanged(self):
        assert minimize(T1) == T1
        assert minimize(~T1) == ~T1

    def test_tautology_over_variables(self):
        assert minimize(T1 | ~T1).is_true()

    def test_redundant_consensus_term_removed(self):
        # (T1&T2) | (~T1&T3) | (T2&T3): the consensus term T2&T3 is
        # redundant — the classic example local rewrites cannot catch.
        bloated = (T1 & T2) | (~T1 & T3) | (T2 & T3)
        minimal = minimize(bloated)
        assert minimal.equivalent(bloated)
        assert product_count(minimal) == 2

    def test_subsumed_longer_product(self):
        bloated = (T1 & T2) | (T1 & ~T2 & T3) | (T1 & T3)
        minimal = minimize(bloated)
        assert minimal.equivalent(bloated)
        assert product_count(minimal) == 2
        assert literal_count(minimal) == 4

    def test_xor_is_already_minimal(self):
        xor = (T1 & ~T2) | (~T1 & T2)
        minimal = minimize(xor)
        assert minimal.equivalent(xor)
        assert product_count(minimal) == 2

    def test_full_cube_collapse(self):
        # All four combinations of T1,T2 -> TRUE.
        everything = (
            (T1 & T2) | (T1 & ~T2) | (~T1 & T2) | (~T1 & ~T2)
        )
        assert minimize(everything).is_true()

    def test_three_variable_reduction(self):
        # Majority function: minimal form has 3 products of 2 literals.
        majority = (T1 & T2) | (T1 & T3) | (T2 & T3) | (T1 & T2 & T3)
        minimal = minimize(majority)
        assert minimal.equivalent(majority)
        assert product_count(minimal) == 3
        assert literal_count(minimal) == 6

    def test_variable_limit_enforced(self):
        wide = Condition.all_of(*(f"T{i}" for i in range(25)))
        with pytest.raises(ConditionError):
            minimize(wide)


TXNS = ["T1", "T2", "T3", "T4"]
literals = st.builds(
    Literal, txn=st.sampled_from(TXNS), positive=st.booleans()
)
conditions = st.lists(
    st.frozensets(literals, min_size=0, max_size=4), min_size=0, max_size=6
).map(Condition)


def all_assignments():
    for combo in itertools.product((False, True), repeat=len(TXNS)):
        yield dict(zip(TXNS, combo))


@given(conditions)
@settings(max_examples=80)
def test_property_minimize_preserves_semantics(condition):
    minimal = minimize(condition)
    for assignment in all_assignments():
        assert minimal.evaluate(assignment) == condition.evaluate(assignment)


@given(conditions)
@settings(max_examples=80)
def test_property_minimize_never_grows(condition):
    minimal = minimize(condition)
    assert product_count(minimal) <= product_count(condition)
    assert literal_count(minimal) <= literal_count(condition)


@given(conditions)
@settings(max_examples=40)
def test_property_minimize_is_idempotent(condition):
    once = minimize(condition)
    twice = minimize(once)
    assert product_count(twice) == product_count(once)
    assert twice.equivalent(once)


class TestPolyvalueMinimized:
    def test_minimized_preserves_resolution(self):
        from repro.core.polyvalue import Polyvalue

        inner = Polyvalue.in_doubt("T1", 1, 2)
        middle = Polyvalue.in_doubt("T2", inner, 3)
        outer = Polyvalue.in_doubt("T3", middle, inner)
        squeezed = outer.minimized()
        import itertools

        for combo in itertools.product((False, True), repeat=3):
            assignment = dict(zip(("T1", "T2", "T3"), combo))
            assert squeezed.value_under(assignment) == outer.value_under(
                assignment
            )

    def test_minimized_never_larger(self):
        from repro.core.polyvalue import Polyvalue

        inner = Polyvalue.in_doubt("T1", 1, 2)
        outer = Polyvalue.in_doubt("T2", inner, 1)
        squeezed = outer.minimized()
        for (_, before), (_, after) in zip(outer.pairs, squeezed.pairs):
            assert literal_count(after) <= literal_count(before)
