"""Unit tests for the section 4.1 analytic model (repro.analysis.model)."""

import math

import pytest

from repro.analysis.model import (
    TYPICAL,
    ModelParams,
    UnstableRegimeError,
    decay_rate,
    is_stable,
    stability_margin,
    steady_state_polyvalues,
    table1_rows,
    table2_rows,
    time_to_settle,
    transient_polyvalues,
)
from repro.core.errors import ReproError


def params(u=10, f=0.0001, i=1_000_000, r=0.001, d=1, y=0):
    return ModelParams(
        updates_per_second=u,
        failure_probability=f,
        items=i,
        recovery_rate=r,
        dependency_mean=d,
        update_independence=y,
    )


class TestValidation:
    def test_typical_is_valid(self):
        assert TYPICAL.U == 10
        assert TYPICAL.I == 1_000_000

    def test_negative_items_rejected(self):
        with pytest.raises(ReproError):
            params(i=0)

    def test_probability_bounds(self):
        with pytest.raises(ReproError):
            params(f=1.5)
        with pytest.raises(ReproError):
            params(y=-0.1)

    def test_recovery_rate_positive(self):
        with pytest.raises(ReproError):
            params(r=0)

    def test_vary_changes_one_field(self):
        varied = TYPICAL.vary(updates_per_second=100)
        assert varied.U == 100
        assert varied.F == TYPICAL.F


class TestSteadyState:
    def test_typical_database_value(self):
        # Paper Table 1 row 1: P = 1.01
        assert steady_state_polyvalues(TYPICAL) == pytest.approx(1.0101, abs=1e-3)

    def test_formula_matches_direct_computation(self):
        p = params(u=7, f=0.002, i=50_000, r=0.005, d=2, y=0.3)
        expected = (7 * 0.002 * 50_000) / (50_000 * 0.005 + 7 * 0.3 - 7 * 2)
        assert steady_state_polyvalues(p) == pytest.approx(expected)

    def test_scales_linearly_with_failure_probability(self):
        base = steady_state_polyvalues(params(f=0.0001))
        tenfold = steady_state_polyvalues(params(f=0.001))
        assert tenfold == pytest.approx(10 * base)

    def test_unstable_regime_raises(self):
        # U*D > I*R: propagation outpaces recovery.
        with pytest.raises(UnstableRegimeError):
            steady_state_polyvalues(params(u=1000, d=10, i=1000, r=0.001))

    def test_stability_margin_sign(self):
        assert stability_margin(TYPICAL) > 0
        assert is_stable(TYPICAL)
        assert not is_stable(params(u=1000, d=10, i=1000, r=0.001))

    def test_higher_y_reduces_polyvalues(self):
        low_y = steady_state_polyvalues(params(y=0))
        high_y = steady_state_polyvalues(params(y=1))
        assert high_y < low_y

    def test_higher_d_increases_polyvalues(self):
        low_d = steady_state_polyvalues(params(d=1))
        high_d = steady_state_polyvalues(params(d=50))
        assert high_d > low_d


class TestTransient:
    def test_starts_at_initial_value(self):
        assert transient_polyvalues(TYPICAL, 500.0, 0.0) == pytest.approx(500.0)

    def test_converges_to_steady_state(self):
        steady = steady_state_polyvalues(TYPICAL)
        late = transient_polyvalues(TYPICAL, 500.0, 1e7)
        assert late == pytest.approx(steady, rel=1e-6)

    def test_monotone_decay_from_above(self):
        values = [
            transient_polyvalues(TYPICAL, 500.0, t) for t in (0, 100, 1000, 10000)
        ]
        assert values == sorted(values, reverse=True)

    def test_monotone_growth_from_below(self):
        values = [
            transient_polyvalues(TYPICAL, 0.0, t) for t in (0, 100, 1000, 10000)
        ]
        assert values == sorted(values)

    def test_decay_rate_formula(self):
        # lambda = (IR + UY - UD) / I
        p = params()
        expected = (1_000_000 * 0.001 + 0 - 10 * 1) / 1_000_000
        assert decay_rate(p) == pytest.approx(expected)

    def test_stability_claim_burst_halves_predictably(self):
        # "A serious failure ... does not cause the number of
        # polyvalues to grow without limit."  Half-life = ln2/lambda.
        p = params()
        steady = steady_state_polyvalues(p)
        burst = steady + 1000.0
        half_life = math.log(2) / decay_rate(p)
        halfway = transient_polyvalues(p, burst, half_life)
        assert halfway == pytest.approx(steady + 500.0, rel=1e-9)

    def test_time_to_settle(self):
        p = params()
        settle = time_to_settle(p, 1000.0, tolerance=0.01)
        remaining = transient_polyvalues(p, 1000.0, settle)
        steady = steady_state_polyvalues(p)
        assert remaining - steady == pytest.approx(0.01 * (1000.0 - steady), rel=1e-9)

    def test_negative_time_rejected(self):
        with pytest.raises(ReproError):
            transient_polyvalues(TYPICAL, 0.0, -1.0)


class TestTable1:
    def test_eleven_rows(self):
        assert len(table1_rows()) == 11

    def test_first_row_is_typical(self):
        assert table1_rows()[0].params == TYPICAL

    def test_legible_rows_match_paper_to_two_decimals(self):
        for row in table1_rows():
            if row.paper_value is not None:
                assert row.model_value == pytest.approx(
                    row.paper_value, abs=0.0051
                ), row.note

    def test_all_rows_stable(self):
        for row in table1_rows():
            assert is_stable(row.params), row.note


class TestTable2:
    def test_six_rows(self):
        assert len(table2_rows()) == 6

    def test_model_matches_paper_predictions(self):
        for row in table2_rows():
            assert row.model_value == pytest.approx(
                row.paper_predicted, rel=0.01
            )

    def test_paper_actuals_below_or_near_predictions(self):
        # The paper: "The number of polyvalues obtained in the
        # simulation is in general smaller than predicted."
        for row in table2_rows():
            assert row.paper_actual <= row.paper_predicted * 1.02
