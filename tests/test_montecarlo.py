"""Tests for the section 4.2 Monte-Carlo simulation (repro.analysis.montecarlo)."""

import pytest

from repro.analysis.model import ModelParams, steady_state_polyvalues
from repro.analysis.montecarlo import (
    PolyvalueSimulation,
    simulate,
    simulate_averaged,
)
from repro.core.errors import SimulationError


def params(u=10, f=0.01, i=10_000, r=0.01, d=1, y=0):
    return ModelParams(
        updates_per_second=u,
        failure_probability=f,
        items=i,
        recovery_rate=r,
        dependency_mean=d,
        update_independence=y,
    )


class TestMechanics:
    def test_no_failures_no_polyvalues(self):
        result = simulate(params(f=0.0), seed=1)
        assert result.mean_polyvalues == 0
        assert result.failures == 0
        assert result.final_polyvalues == 0

    def test_failures_create_polyvalues(self):
        result = simulate(params(), seed=1)
        assert result.failures > 0
        assert result.mean_polyvalues > 0

    def test_every_failure_eventually_recovers(self):
        simulation = PolyvalueSimulation(params(), seed=2)
        simulation.run(1000.0)
        # Failures still pending recovery are bounded by recent arrivals.
        assert simulation.recoveries >= simulation.failures - 25

    def test_transaction_rate_approximates_u(self):
        result = simulate(params(u=10), duration=1000.0, seed=3)
        assert result.transactions == pytest.approx(10_000, rel=0.1)

    def test_tag_indexes_stay_inverse(self):
        simulation = PolyvalueSimulation(params(d=3), seed=4)
        simulation.run(500.0)
        for item, tags in simulation._tags.items():
            assert tags, "empty tag set should have been removed"
            for tag in tags:
                assert item in simulation._items_of[tag]
        for tag, items in simulation._items_of.items():
            assert items
            for item in items:
                assert tag in simulation._tags[item]

    def test_polytransactions_counted(self):
        result = simulate(params(f=0.05, d=3), seed=5)
        assert result.polytransactions > 0

    def test_determinism(self):
        a = simulate(params(), seed=9)
        b = simulate(params(), seed=9)
        assert a.mean_polyvalues == b.mean_polyvalues
        assert a.transactions == b.transactions

    def test_seed_changes_results(self):
        a = simulate(params(), seed=9)
        b = simulate(params(), seed=10)
        assert a.mean_polyvalues != b.mean_polyvalues


class TestValidation:
    def test_duration_must_cover_recovery_constant(self):
        simulation = PolyvalueSimulation(params(r=0.001), seed=0)
        with pytest.raises(SimulationError):
            simulation.run(100.0)  # < 4/R = 4000

    def test_non_positive_duration_rejected(self):
        with pytest.raises(SimulationError):
            PolyvalueSimulation(params(), seed=0).run(0.0)

    def test_warmup_fraction_bounds(self):
        with pytest.raises(SimulationError):
            PolyvalueSimulation(params(), seed=0).run(1000.0, warmup_fraction=1.0)

    def test_absurd_item_count_rejected(self):
        with pytest.raises(SimulationError):
            PolyvalueSimulation(params(i=10**9), seed=0)

    def test_simulate_averaged_runs_validation(self):
        with pytest.raises(SimulationError):
            simulate_averaged(params(), runs=0)


class TestAgreementWithModel:
    def test_tracks_model_within_band(self):
        # The paper's comparison: simulated P close to, and generally
        # below, the predicted P.
        p = params(u=10, f=0.01)
        results = simulate_averaged(p, runs=3, duration=2000.0, seed=21)
        mean = sum(r.mean_polyvalues for r in results) / len(results)
        predicted = steady_state_polyvalues(p)
        assert 0.5 * predicted < mean < 1.25 * predicted

    @pytest.mark.slow
    def test_sim_close_to_prediction_across_rates(self):
        # Averaged over several runs the simulation tracks the model
        # closely at every update rate (the paper's own sim sat a bit
        # below its predictions; ours is nearly unbiased — either way
        # the *shape* is the model's).  The measurement window must
        # span many recovery time constants (1/R = 1000 s) or the
        # time-weighted mean is dominated by a handful of polyvalue
        # episodes and any seed set is a coin flip — hence the long
        # duration (8 time constants of stable period per run).
        for index, u in enumerate((2, 5, 10)):
            p = params(u=u)
            results = simulate_averaged(
                p, runs=5, duration=16000.0, seed=31 + index
            )
            mean = sum(r.mean_polyvalues for r in results) / len(results)
            assert mean == pytest.approx(
                steady_state_polyvalues(p), rel=0.15
            )

    def test_model_prediction_attached_to_result(self):
        p = params()
        result = simulate(p, seed=0)
        assert result.model_prediction == pytest.approx(
            steady_state_polyvalues(p)
        )

    def test_higher_failure_rate_more_polyvalues(self):
        low = simulate(params(f=0.001), duration=2000.0, seed=41)
        high = simulate(params(f=0.02), duration=2000.0, seed=41)
        assert high.mean_polyvalues > low.mean_polyvalues

    def test_dependency_propagation_increases_polyvalues(self):
        narrow = simulate(params(d=1), duration=2000.0, seed=51)
        wide = simulate(params(d=5), duration=2000.0, seed=51)
        assert wide.mean_polyvalues > narrow.mean_polyvalues

    @pytest.mark.slow
    def test_paper_scale_typical_database(self):
        # The paper's "typical database" (Table 1 row 1): a MILLION
        # items, U=10, F=1e-4, R=1e-3.  The tag-set simulation handles
        # the full scale directly; the steady state is ~1 polyvalue.
        typical = ModelParams(
            updates_per_second=10,
            failure_probability=0.0001,
            items=1_000_000,
            recovery_rate=0.001,
            dependency_mean=1,
            update_independence=0,
        )
        result = simulate(typical, duration=20_000.0, seed=61)
        # ~200k transactions; expected ~20 failures; P_inf = 1.01.
        assert result.transactions > 150_000
        assert result.failures > 5
        assert 0.1 < result.mean_polyvalues < 4.0
        assert result.model_prediction == pytest.approx(1.0101, abs=0.001)
