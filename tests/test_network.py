"""Unit tests for the simulated network (repro.net.network)."""

import pytest

from repro.core.errors import NetworkError
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.rand import Rng


def make_network(**kwargs):
    sim = Simulator()
    network = Network(sim, Rng(0), **kwargs)
    return sim, network


def register_collector(network, site):
    inbox = []
    network.register(site, inbox.append)
    return inbox


class TestDelivery:
    def test_message_delivered_after_latency(self):
        sim, network = make_network(base_latency=0.1, jitter=0.0)
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        network.send("a", "b", "hello")
        assert inbox == []
        sim.run()
        assert len(inbox) == 1
        assert inbox[0].payload == "hello"
        assert sim.now == pytest.approx(0.1)

    def test_jitter_varies_latency(self):
        sim, network = make_network(base_latency=0.1, jitter=0.05)
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        for _ in range(5):
            network.send("a", "b", "x")
        sim.run()
        assert len(inbox) == 5
        assert 0.1 <= sim.now <= 0.15

    def test_envelope_carries_metadata(self):
        sim, network = make_network()
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        network.send("a", "b", {"k": 1})
        sim.run()
        envelope = inbox[0]
        assert envelope.sender == "a"
        assert envelope.recipient == "b"
        assert envelope.sent_at == 0.0

    def test_unknown_recipient_raises(self):
        sim, network = make_network()
        network.register("a", lambda e: None)
        with pytest.raises(NetworkError):
            network.send("a", "nowhere", "x")

    def test_broadcast_reaches_everyone(self):
        sim, network = make_network()
        inboxes = {s: register_collector(network, s) for s in ("a", "b", "c")}
        network.broadcast("a", ["b", "c"], "ping")
        sim.run()
        assert len(inboxes["b"]) == 1
        assert len(inboxes["c"]) == 1
        assert len(inboxes["a"]) == 0

    def test_stats_count_sent_and_delivered(self):
        sim, network = make_network()
        register_collector(network, "b")
        network.register("a", lambda e: None)
        network.send("a", "b", "x")
        sim.run()
        assert network.stats.sent == 1
        assert network.stats.delivered == 1
        assert network.stats.dropped == 0


class TestCrashes:
    def test_message_to_down_site_dropped(self):
        sim, network = make_network()
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        network.crash_site("b")
        network.send("a", "b", "x")
        sim.run()
        assert inbox == []
        assert network.stats.dropped_site_down == 1

    def test_message_from_down_site_dropped(self):
        sim, network = make_network()
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        network.crash_site("a")
        network.send("a", "b", "x")
        sim.run()
        assert inbox == []

    def test_crash_during_flight_drops_at_delivery(self):
        sim, network = make_network(base_latency=1.0, jitter=0.0)
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        network.send("a", "b", "x")
        sim.schedule(0.5, lambda: network.crash_site("b"))
        sim.run()
        assert inbox == []

    def test_recovery_restores_delivery(self):
        sim, network = make_network()
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        network.crash_site("b")
        network.recover_site("b")
        network.send("a", "b", "x")
        sim.run()
        assert len(inbox) == 1

    def test_is_up_reflects_state(self):
        sim, network = make_network()
        network.register("a", lambda e: None)
        assert network.is_up("a")
        network.crash_site("a")
        assert not network.is_up("a")


class TestPartitions:
    def test_partition_blocks_both_directions(self):
        sim, network = make_network()
        inbox_a = register_collector(network, "a")
        inbox_b = register_collector(network, "b")
        network.partition("a", "b")
        network.send("a", "b", "x")
        network.send("b", "a", "y")
        sim.run()
        assert inbox_a == [] and inbox_b == []
        assert network.stats.dropped_partition == 2

    def test_partition_leaves_other_pairs(self):
        sim, network = make_network()
        inbox_c = register_collector(network, "c")
        network.register("a", lambda e: None)
        network.register("b", lambda e: None)
        network.partition("a", "b")
        network.send("a", "c", "x")
        sim.run()
        assert len(inbox_c) == 1

    def test_heal_restores_traffic(self):
        sim, network = make_network()
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        network.partition("a", "b")
        network.heal("a", "b")
        network.send("a", "b", "x")
        sim.run()
        assert len(inbox) == 1

    def test_heal_all(self):
        sim, network = make_network()
        network.register("a", lambda e: None)
        network.register("b", lambda e: None)
        network.partition("a", "b")
        network.heal_all()
        assert not network.is_partitioned("a", "b")

    def test_is_partitioned_symmetric(self):
        sim, network = make_network()
        network.partition("a", "b")
        assert network.is_partitioned("b", "a")


class TestLoss:
    def test_loss_probability_one_drops_everything(self):
        sim, network = make_network(loss_probability=1.0)
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        for _ in range(10):
            network.send("a", "b", "x")
        sim.run()
        assert inbox == []
        assert network.stats.dropped_loss == 10

    def test_loss_probability_partial(self):
        sim, network = make_network(loss_probability=0.5)
        inbox = register_collector(network, "b")
        network.register("a", lambda e: None)
        for _ in range(400):
            network.send("a", "b", "x")
        sim.run()
        assert 100 < len(inbox) < 300

    def test_negative_latency_rejected(self):
        sim = Simulator()
        with pytest.raises(NetworkError):
            Network(sim, Rng(0), base_latency=-0.1)
