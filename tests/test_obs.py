"""Tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.obs.events import TAXONOMY, EventBus, EventLog, ObsEvent
from repro.obs.export import events_to_jsonl, prometheus_text, render_report
from repro.obs.registry import MetricError, MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.txn.system import DistributedSystem
from repro.txn.tracing import ProtocolTracer
from repro.txn.transaction import Transaction

from tests.conftest import increment, move, run_to_decision


def observed_system(seed=9, **kwargs):
    system = DistributedSystem.build(
        sites=3,
        items={"a": 10, "b": 20, "c": 30},
        seed=seed,
        jitter=0.0,
        **kwargs,
    )
    return system, EventLog(system.bus)


class TestEventBus:
    def test_inactive_bus_is_falsy_and_emits_nothing(self):
        bus = EventBus()
        assert not bus
        assert not bus.active
        assert bus.emit("txn.submitted", time=0.0) is None

    def test_subscribe_makes_bus_truthy(self):
        bus = EventBus()
        bus.subscribe(lambda event: None)
        assert bus
        assert bus.active

    def test_emit_delivers_to_subscribers_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("first", e.name)))
        bus.subscribe(lambda e: seen.append(("second", e.name)))
        bus.emit("txn.committed", time=1.0, txn="T1", latency=0.04)
        assert seen == [("first", "txn.committed"), ("second", "txn.committed")]

    def test_prefix_filter(self):
        bus = EventBus()
        msgs = EventLog(bus, prefix="msg.")
        both = EventLog(bus, prefix=("txn.", "indoubt."))
        bus.emit("msg.send", time=0.0)
        bus.emit("txn.submitted", time=0.0, txn="T1")
        bus.emit("indoubt.open", time=0.0, txn="T1", site="s")
        bus.emit("site.state", time=0.0, txn="T1", site="s")
        assert [e.name for e in msgs] == ["msg.send"]
        assert [e.name for e in both] == ["txn.submitted", "indoubt.open"]

    def test_unsubscribe(self):
        bus = EventBus()
        log = EventLog(bus)
        bus.emit("msg.send", time=0.0)
        log.detach()
        bus.emit("msg.send", time=1.0)
        assert len(log) == 1
        assert not bus

    def test_event_attrs_and_describe(self):
        event = ObsEvent(
            time=0.5, name="lock.conflict", txn="T1", site="s", attrs={"item": "a"}
        )
        text = event.describe()
        assert "lock.conflict" in text
        assert "txn=T1" in text
        assert "item=a" in text


class TestRegistry:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "help", ("site", "outcome"))
        counter.inc(site="s0", outcome="committed")
        counter.inc(2, site="s1", outcome="committed")
        counter.inc(site="s1", outcome="aborted")
        assert counter.total(outcome="committed") == 3
        assert counter.total(site="s1") == 3
        assert counter.value == 4

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("t_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_label_mismatch_rejected(self):
        counter = MetricsRegistry().counter("t_total", "", ("site",))
        with pytest.raises(MetricError):
            counter.inc(wrong="x")

    def test_registration_idempotent_and_conflict_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "", ("site",))
        assert registry.counter("x_total", "", ("site",)) is first
        with pytest.raises(MetricError):
            registry.gauge("x_total")
        with pytest.raises(MetricError):
            registry.counter("x_total", "", ("other",))

    def test_gauge_up_and_down(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        gauge.set(7)
        assert gauge.value == 7

    def test_histogram_buckets_and_quantiles(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", "", (), buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        merged = histogram.merged()
        assert merged.count == 4
        assert merged.sum == pytest.approx(6.05)
        assert merged.cumulative() == [
            (0.1, 1), (1.0, 3), (10.0, 4), (float("inf"), 4),
        ]
        # p50 falls in the (0.1, 1.0] bucket.
        assert 0.1 <= merged.quantile(0.5) <= 1.0

    def test_histogram_boundary_lands_in_its_bucket(self):
        # le is inclusive (Prometheus semantics): observing exactly a
        # bound counts in that bound's bucket.
        histogram = MetricsRegistry().histogram("h", "", (), buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.merged().cumulative()[0] == (1.0, 1)


class TestInstrumentedSystem:
    def test_commit_emits_full_lifecycle(self):
        system, log = observed_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        names = {event.name for event in log.for_txn(handle.txn)}
        assert {
            "txn.submitted", "phase.read.start", "phase.stage.start",
            "site.state", "msg.send", "msg.deliver", "txn.committed",
        } <= names

    def test_all_event_names_are_in_the_taxonomy(self):
        system, log = observed_system()
        system.submit(move("a", "b", 3))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.0)
        system.recover_site("site-0")
        system.run_for(5.0)
        assert {event.name for event in log} <= set(TAXONOMY)

    def test_crash_scenario_emits_indoubt_pair(self):
        system, log = observed_system()
        handle = system.submit(move("a", "b", 3))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.0)
        system.recover_site("site-0")
        system.run_for(5.0)
        opens = log.named("indoubt.open")
        closes = log.named("indoubt.close")
        live = [e for e in opens if e.attrs.get("live")]
        assert live and live[0].site == "site-1"
        assert any(
            e.txn == handle.txn and e.site == "site-1" for e in closes
        )
        close = next(e for e in closes if e.site == "site-1")
        open_ = live[0]
        assert close.time > open_.time
        # The histogram saw the same window.
        merged = system.metrics.registry.get(
            "repro_in_doubt_window_seconds"
        ).merged()
        assert merged.count == 1
        assert merged.sum == pytest.approx(close.time - open_.time)

    def test_unobserved_bus_means_no_event_cost(self):
        system = DistributedSystem.build(
            sites=2, items={"a": 1, "b": 2}, seed=3
        )
        assert not system.bus  # nothing subscribed -> every guard is False
        handle = system.submit(move("a", "b", 1))
        run_to_decision(system, handle)  # runs fine without subscribers


class TestDropEventParity:
    """The same drop is visible through the tracer and the raw bus."""

    def test_site_down_drops_in_both_views_with_matching_timestamps(self):
        system, log = observed_system()
        tracer = ProtocolTracer(system)
        system.submit(move("a", "b", 3))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(2.0)
        trace_drops = tracer.drops()
        bus_drops = log.named("msg.drop")
        assert trace_drops
        assert all(r.event == "drop:site-down" for r in trace_drops)
        assert all(e.attrs["reason"] == "site-down" for e in bus_drops)
        assert [r.time for r in trace_drops] == [e.time for e in bus_drops]
        assert [r.message for r in trace_drops] == [
            e.attrs["message"] for e in bus_drops
        ]

    def test_partition_drops_in_both_views(self):
        system, log = observed_system()
        tracer = ProtocolTracer(system)
        system.network.partition("site-0", "site-1")
        system.submit(move("a", "b", 3))
        system.run_for(1.0)
        partition_times = [
            r.time for r in tracer.drops() if r.event == "drop:partition"
        ]
        assert partition_times
        assert partition_times == [
            e.time
            for e in log.named("msg.drop")
            if e.attrs["reason"] == "partition"
        ]

    def test_tracer_detach_stops_recording(self):
        system, _ = observed_system()
        tracer = ProtocolTracer(system)
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        recorded = len(tracer.records)
        tracer.detach()
        handle = system.submit(move("a", "c", 1))
        run_to_decision(system, handle)
        assert len(tracer.records) == recorded


class TestSpanTracer:
    def crash_scenario(self, seed=9):
        system = DistributedSystem.build(
            sites=3, items={"a": 10, "b": 20, "c": 30}, seed=seed, jitter=0.0
        )
        tracer = SpanTracer(system.bus)
        handle = system.submit(move("a", "b", 3))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.0)
        system.recover_site("site-0")
        system.run_for(5.0)
        return system, tracer, handle

    def test_committed_transaction_has_phase_and_site_children(self):
        system, _ = observed_system()
        tracer = SpanTracer(system.bus)
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        root = tracer.roots[handle.txn]
        assert root.attrs["outcome"] == "committed"
        assert root.duration == pytest.approx(handle.latency)
        names = {span.name for span in root.children}
        assert {"phase:read", "phase:stage"} <= names
        assert any(name.startswith("compute@") for name in names)
        assert any(name.startswith("wait@") for name in names)
        # Every span of a decided commit is closed.
        assert all(span.end is not None for span in root.walk())

    def test_in_doubt_window_span_covers_open_to_resolve(self):
        _, tracer, handle = self.crash_scenario()
        windows = [
            span
            for span in tracer.in_doubt_windows()
            if span.attrs.get("live")
        ]
        assert len(windows) == 1
        window = windows[0]
        assert window.txn == handle.txn
        assert window.site == "site-1"
        assert window.end is not None and window.duration > 0
        assert window.attrs["committed"] is False
        root = tracer.roots[handle.txn]
        # The window outlives the root (presumed abort decided earlier).
        assert window.end > root.end

    def test_wait_span_closed_by_wait_timeout(self):
        _, tracer, handle = self.crash_scenario()
        root = tracer.roots[handle.txn]
        waits = [s for s in root.children if s.name == "wait@site-1"]
        assert len(waits) == 1
        assert waits[0].attrs["ended_by"] == "wait-timeout"

    def test_overflow_abort_annotates_root_span(self):
        from repro.txn.config import ProtocolConfig

        config = ProtocolConfig(max_alternatives=1)
        system = DistributedSystem.build(
            sites=3,
            items={f"item-{index}": 100 for index in range(3)},
            seed=42,
            jitter=0.0,
            config=config,
        )
        tracer = SpanTracer(system.bus)
        # Strand a transfer to make item-1 a polyvalue, then touch it:
        # any partitioning read overflows a budget of 1.
        system.submit(move("item-0", "item-1", 30))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.0)
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        root = tracer.roots[handle.txn]
        assert root.attrs["outcome"] == "aborted"
        assert root.attrs["overflow"] is True
        assert root.attrs["overflow_limit"] == 1
        assert "fan-out overflow" in root.attrs["reason"]
        # The stranded transfer's root is NOT marked.
        others = [r for t, r in tracer.roots.items() if t != handle.txn]
        assert all("overflow" not in r.attrs for r in others)

    def test_overload_window_span_covers_block_to_resolution(self):
        from repro.txn.config import ProtocolConfig

        config = ProtocolConfig(polyvalue_budget=0)
        system = DistributedSystem.build(
            sites=3,
            items={f"item-{index}": 100 for index in range(6)},
            seed=42,
            jitter=0.0,
            config=config,
        )
        tracer = SpanTracer(system.bus)
        system.submit(move("item-0", "item-1", 10))
        system.submit(move("item-3", "item-4", 10))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(2.0)
        # Budget 0: both wait-timeouts at site-1 fell back to blocking.
        windows = tracer.overload_windows()
        assert len(windows) == 2
        assert all(w.site == "site-1" for w in windows)
        assert all(w.attrs == {"budget": 0, "polyvalues": 0} for w in windows)
        assert all(w.end is None for w in windows)  # still blocked
        # Recovery lets the outcome-query loop resolve both; the spans
        # close with the participant's final WAIT → IDLE trigger.
        system.recover_site("site-0")
        system.run_for(6.0)
        assert all(w.end is not None for w in windows)
        assert all(w.attrs["ended_by"] in ("complete", "abort") for w in windows)
        # The window outlives its root span (presumed abort decided
        # at the coordinator long before the participant learns it).
        for window in windows:
            root = tracer.roots[window.txn]
            assert root.end is not None
            assert window.end >= root.end

    def test_render_and_to_dicts(self):
        _, tracer, handle = self.crash_scenario()
        text = tracer.render(handle.txn)
        assert f"txn:{handle.txn}" in text
        assert "in-doubt@site-1" in text
        dumped = tracer.to_dicts()
        assert json.dumps(dumped)  # JSON-safe
        assert any(d["txn"] == handle.txn for d in dumped)

    def test_detach(self):
        system, log = observed_system()
        tracer = SpanTracer(system.bus)
        tracer.detach()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        assert tracer.roots == {}
        assert len(log) > 0  # other subscribers unaffected


class TestCampaignMetrics:
    def drive(self, bus):
        bus.emit("campaign.start", time=0.0, label="chaos", trials=3,
                 jobs=2, chunks=2)
        bus.emit("campaign.trial", time=0.1, label="chaos", index=0, ok=True)
        bus.emit("campaign.trial", time=0.2, label="chaos", index=1, ok=True)
        bus.emit("campaign.trial", time=0.3, label="chaos", index=2,
                 ok=False, error="worker died (exit 9)")
        bus.emit("campaign.chunk", time=0.4, label="chaos", chunk=0, ok=True)
        bus.emit("campaign.chunk", time=0.5, label="chaos", chunk=1, ok=False)

    def test_folds_campaign_events_into_registry(self):
        from repro.obs.export import CampaignMetrics

        bus = EventBus()
        cm = CampaignMetrics(bus)
        self.drive(bus)
        summary = cm.summary()
        assert summary["campaigns"] == 1
        assert summary["campaigns_active"] == 1  # no campaign.done yet
        assert summary["trials"] == 3
        assert summary["trials_ok"] == 2
        assert summary["trials_failed"] == 1
        assert summary["chunks"] == 2
        assert summary["chunks_failed"] == 1
        bus.emit("campaign.done", time=0.6, label="chaos", trials=3,
                 failures=1)
        assert cm.summary()["campaigns_active"] == 0

    def test_flows_through_prometheus_and_report(self):
        from repro.obs.export import CampaignMetrics

        bus = EventBus()
        cm = CampaignMetrics(bus)
        self.drive(bus)
        text = prometheus_text(cm.registry)
        assert "# TYPE repro_campaigns_total counter" in text
        assert 'repro_campaigns_total{label="chaos"} 1' in text
        assert (
            'repro_campaign_trials_total{label="chaos",status="failed"} 1'
            in text
        )
        assert "repro_campaigns_active 1" in text
        report = render_report(cm)
        assert "trials_failed" in report

    def test_live_campaign_feeds_metrics(self):
        from repro.obs.export import CampaignMetrics
        from repro.parallel import run_trials

        bus = EventBus()
        cm = CampaignMetrics(bus)
        outcome = run_trials(
            _square, [1, 2, 3], jobs=1, label="sq", bus=bus
        )
        assert outcome.results == [1, 4, 9]
        summary = cm.summary()
        assert summary["trials"] == 3 and summary["trials_ok"] == 3
        assert summary["campaigns_active"] == 0

    def test_detach_stops_folding(self):
        from repro.obs.export import CampaignMetrics

        bus = EventBus()
        cm = CampaignMetrics(bus)
        cm.detach()
        self.drive(bus)
        assert cm.summary()["trials"] == 0


def _square(value):
    return value * value


class TestExporters:
    def test_events_to_jsonl_round_trips(self):
        system, log = observed_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        text = events_to_jsonl(log.events)
        lines = [json.loads(line) for line in text.splitlines()]
        assert len(lines) == len(log)
        assert lines[0]["name"] == "txn.submitted"
        assert all("time" in line and "name" in line for line in lines)

    def test_prometheus_text_structure(self):
        system, _ = observed_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        text = prometheus_text(system.metrics.registry)
        assert "# TYPE repro_transactions_total counter" in text
        assert (
            'repro_transactions_total{site="site-0",outcome="committed"} 1'
            in text
        )
        assert "# TYPE repro_commit_latency_seconds histogram" in text
        assert 'repro_commit_latency_seconds_bucket{site="site-0",le="+Inf"} 1' in text
        assert 'repro_commit_latency_seconds_count{site="site-0"} 1' in text
        # Bucket counts are cumulative and end at the overall count.
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_commit_latency_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert counts[-1] == 1

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("weird_total", 'say "hi"\nplease', ("tag",)).inc(
            tag='a"b\\c'
        )
        text = prometheus_text(registry)
        assert '# HELP weird_total say "hi"\\nplease' in text
        assert 'weird_total{tag="a\\"b\\\\c"} 1' in text

    def test_render_report_shows_headlines_and_histograms(self):
        system, _ = observed_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        text = render_report(system.metrics)
        assert "submitted" in text
        assert "repro_commit_latency_seconds" in text
        assert "p95" in text


class TestCollectorCompatibility:
    def test_legacy_attribute_api_still_works(self):
        metrics = DistributedSystem.build(
            sites=1, items={"a": 1}, seed=0
        ).metrics
        metrics.lock_conflict_aborts += 1
        metrics.unilateral_decisions += 2
        metrics.blocked_item_seconds += 1.5
        assert metrics.lock_conflict_aborts == 1
        assert metrics.unilateral_decisions == 2
        assert metrics.blocked_item_seconds == pytest.approx(1.5)

    def test_summary_keys_unchanged(self):
        system, _ = observed_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        summary = system.metrics.summary()
        assert summary["submitted"] == 1
        assert summary["committed"] == 1
        assert set(summary) == {
            "submitted", "committed", "aborted", "commit_rate",
            "polytransactions", "polyvalues_installed",
            "polyvalues_resolved", "lock_conflict_aborts",
            "notify_retransmissions", "fanout_overflows",
            "overload_blocks", "certain_output_fraction",
            "unilateral_decisions", "inconsistent_decisions",
        }

    def test_site_labels_reach_the_registry(self):
        system, _ = observed_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        decided = system.metrics.registry.get("repro_transactions_total")
        assert decided.total(site="site-0", outcome="committed") == 1
