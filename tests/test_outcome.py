"""Unit tests for outcome tables and the outcome log (repro.core.outcome)."""

import pytest

from repro.core.outcome import OutcomeLog, OutcomeTable


class TestOutcomeTableRecording:
    def test_record_dependency_tracks_txn(self):
        table = OutcomeTable()
        table.record_dependency("T1", "item-a")
        assert table.tracks("T1")
        assert table.dependent_items("T1") == frozenset({"item-a"})

    def test_record_dependencies_bulk(self):
        table = OutcomeTable()
        table.record_dependencies(["T1", "T2"], "item-a")
        assert table.pending_transactions() == frozenset({"T1", "T2"})

    def test_record_forward(self):
        table = OutcomeTable()
        table.record_forward("T1", "site-9")
        assert table.forwarded_sites("T1") == frozenset({"site-9"})

    def test_unknown_txn_queries_are_empty(self):
        table = OutcomeTable()
        assert table.dependent_items("T9") == frozenset()
        assert table.forwarded_sites("T9") == frozenset()
        assert not table.tracks("T9")

    def test_len_counts_entries(self):
        table = OutcomeTable()
        table.record_dependency("T1", "a")
        table.record_dependency("T2", "b")
        assert len(table) == 2


class TestOutcomeTableRemoval:
    def test_remove_dependency_drops_item(self):
        table = OutcomeTable()
        table.record_dependency("T1", "a")
        table.record_dependency("T1", "b")
        table.remove_dependency("T1", "a")
        assert table.dependent_items("T1") == frozenset({"b"})

    def test_entry_garbage_collected_when_empty(self):
        table = OutcomeTable()
        table.record_dependency("T1", "a")
        table.remove_dependency("T1", "a")
        assert not table.tracks("T1")
        assert len(table) == 0

    def test_entry_kept_while_forwards_remain(self):
        table = OutcomeTable()
        table.record_dependency("T1", "a")
        table.record_forward("T1", "site-2")
        table.remove_dependency("T1", "a")
        assert table.tracks("T1")

    def test_remove_all_dependencies_spans_txns(self):
        table = OutcomeTable()
        table.record_dependency("T1", "a")
        table.record_dependency("T2", "a")
        table.record_dependency("T2", "b")
        table.remove_all_dependencies("a")
        assert not table.tracks("T1")
        assert table.dependent_items("T2") == frozenset({"b"})

    def test_remove_unknown_dependency_is_noop(self):
        table = OutcomeTable()
        table.remove_dependency("T9", "a")
        assert len(table) == 0


class TestOutcomeTableResolve:
    def test_resolve_returns_work_and_forgets(self):
        table = OutcomeTable()
        table.record_dependency("T1", "a")
        table.record_forward("T1", "site-2")
        resolution = table.resolve("T1", committed=True)
        assert resolution.committed is True
        assert resolution.items_to_reduce == frozenset({"a"})
        assert resolution.sites_to_notify == frozenset({"site-2"})
        # "that site can forget the outcome of T and the table entry"
        assert not table.tracks("T1")

    def test_resolve_unknown_txn_is_empty(self):
        table = OutcomeTable()
        resolution = table.resolve("T9", committed=False)
        assert resolution.items_to_reduce == frozenset()
        assert resolution.sites_to_notify == frozenset()

    def test_resolve_is_idempotent(self):
        table = OutcomeTable()
        table.record_dependency("T1", "a")
        table.resolve("T1", True)
        second = table.resolve("T1", True)
        assert second.items_to_reduce == frozenset()

    def test_resolve_leaves_other_entries(self):
        table = OutcomeTable()
        table.record_dependency("T1", "a")
        table.record_dependency("T2", "a")
        table.resolve("T1", True)
        assert table.tracks("T2")


class TestOutcomeLog:
    def test_decide_and_query(self):
        log = OutcomeLog()
        log.decide("T1", True, participants=["s1", "s2"])
        assert log.knows("T1")
        assert log.outcome_of("T1") is True

    def test_unknown_txn_raises(self):
        log = OutcomeLog()
        assert not log.knows("T9")
        with pytest.raises(KeyError):
            log.outcome_of("T9")

    def test_gc_after_all_acks(self):
        log = OutcomeLog()
        log.decide("T1", True, participants=["s1", "s2"])
        log.acknowledge("T1", "s1")
        assert log.knows("T1")
        log.acknowledge("T1", "s2")
        assert not log.knows("T1")

    def test_duplicate_acks_harmless(self):
        log = OutcomeLog()
        log.decide("T1", True, participants=["s1", "s2"])
        log.acknowledge("T1", "s1")
        log.acknowledge("T1", "s1")
        assert log.knows("T1")

    def test_ack_for_unknown_txn_ignored(self):
        log = OutcomeLog()
        log.acknowledge("T9", "s1")
        assert len(log) == 0

    def test_no_participants_gc_requires_explicit_forget(self):
        log = OutcomeLog()
        log.decide("T1", False, participants=[])
        # decide() with no participants keeps the record until forget().
        assert log.knows("T1")
        log.forget("T1")
        assert not log.knows("T1")

    def test_pending_lists_unacknowledged(self):
        log = OutcomeLog()
        log.decide("T1", True, participants=["s1"])
        log.decide("T2", True, participants=["s2"])
        assert log.pending() == frozenset({"T1", "T2"})
        log.acknowledge("T1", "s1")
        assert log.pending() == frozenset({"T2"})

    def test_forget_removes_everything(self):
        log = OutcomeLog()
        log.decide("T1", True, participants=["s1"])
        log.forget("T1")
        assert not log.knows("T1")
        assert log.pending() == frozenset()
