"""Graceful degradation under overload: the polyvalue budget.

Section 6 sketches hybrids of the polyvalue mechanism with other
protocols; the ``polyvalue_budget`` valve implements the overload
half: once a site already carries its budget of unresolved polyvalues,
further wait-phase timeouts fall back to the BLOCKING policy — the
site trades availability on those items for a bound on in-doubt state
instead of fanning out more uncertainty.
"""

import pytest

from repro.core.polyvalue import is_polyvalue
from repro.txn.config import ProtocolConfig
from repro.txn.runtime import SiteState
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus

from tests.conftest import move


def build(budget, sites=3, items=6, seed=42):
    config = ProtocolConfig(polyvalue_budget=budget)
    return DistributedSystem.build(
        sites=sites,
        items={f"item-{index}": 100 for index in range(items)},
        seed=seed,
        jitter=0.0,
        config=config,
    )


def strand_two_transfers(system):
    """Put site-1 in doubt for two transactions at once: two transfers
    into site-1's items, both coordinated at site-0, with site-0
    crashed inside the commit window."""
    system.submit(move("item-0", "item-1", 10))
    system.submit(move("item-3", "item-4", 10))
    # With zero jitter the ready messages land at t=0.04; crashing at
    # 0.035 catches both participants after staging, in WAIT.
    system.run_for(0.035)
    system.crash_site("site-0")
    system.run_for(2.0)


class TestBudgetValve:
    def test_zero_budget_blocks_instead_of_installing(self):
        system = build(budget=0)
        strand_two_transfers(system)
        site1 = system.sites["site-1"]
        assert site1.polyvalue_count() == 0
        assert len(site1.participant.blocked_transactions()) == 2
        assert system.metrics.overload_blocks == 2
        # Blocking means the locks are (deliberately) still held.
        assert site1.runtime.locks.locked_items() != frozenset()

    def test_budget_of_one_installs_then_blocks(self):
        system = build(budget=1)
        strand_two_transfers(system)
        site1 = system.sites["site-1"]
        # First wait-timeout fit the budget and installed; the second
        # found the site saturated and blocked.
        assert site1.polyvalue_count() == 1
        assert len(site1.participant.blocked_transactions()) == 1
        assert system.metrics.overload_blocks == 1
        assert system.metrics.in_doubt_windows == 1

    def test_no_budget_installs_everything(self):
        system = build(budget=None)
        strand_two_transfers(system)
        site1 = system.sites["site-1"]
        assert site1.polyvalue_count() == 2
        assert site1.participant.blocked_transactions() == set()
        assert system.metrics.overload_blocks == 0

    def test_blocked_transaction_stays_in_wait_state(self):
        system = build(budget=0)
        strand_two_transfers(system)
        site1 = system.sites["site-1"]
        for txn in site1.participant.blocked_transactions():
            assert site1.participant.state_of(txn) is SiteState.WAIT

    def test_recovery_resolves_blocked_transactions(self):
        system = build(budget=0)
        strand_two_transfers(system)
        system.recover_site("site-0")
        system.run_for(6.0)
        site1 = system.sites["site-1"]
        assert site1.participant.blocked_transactions() == set()
        assert site1.runtime.locks.locked_items() == frozenset()
        # Presumed abort: the coordinator crashed undecided, so the
        # blocked updates must not have been applied.
        assert system.read_item("item-1") == 100
        assert system.read_item("item-4") == 100

    def test_converges_cleanly_after_recovery(self):
        system = build(budget=1)
        strand_two_transfers(system)
        system.recover_site("site-0")
        assert system.settle(max_time=system.sim.now + 30.0)
        assert system.total_polyvalues() == 0


class TestOracleTolerance:
    def test_no_blocking_oracle_tolerates_budgeted_locks(self):
        # The availability oracle must not flag locks held by design
        # (budget saturation), only genuine leaks.
        from repro.check.oracles import CheckContext, no_blocking_oracle

        system = build(budget=1)
        strand_two_transfers(system)
        verdict = no_blocking_oracle(CheckContext(system=system))
        assert verdict.ok, verdict.details

    def test_oracle_still_fires_without_budget_config(self):
        # Same protocol state, but no budget configured: a polyvalued
        # item that is somehow still locked IS a violation.
        from repro.check.oracles import CheckContext, no_blocking_oracle

        system = build(budget=None)
        strand_two_transfers(system)
        site1 = system.sites["site-1"]
        item = next(iter(site1.store.polyvalued_items()))
        from repro.db.locks import LockMode

        site1.runtime.locks.try_acquire("leak", item, LockMode.WRITE)
        verdict = no_blocking_oracle(CheckContext(system=system))
        assert not verdict.ok
