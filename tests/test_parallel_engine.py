"""The campaign engine itself: sharding, determinism, crash isolation.

The drivers' serial-vs-parallel bit-identity lives in
``test_parallel_equivalence.py``; this file exercises the engine
(:mod:`repro.parallel.pool`) and its two support modules (seeds,
artifacts) directly, with cheap synthetic workers.
"""

from __future__ import annotations

import json
import os
import random
import signal

import pytest

from repro.core.errors import SimulationError
from repro.obs.events import TAXONOMY, EventBus, EventLog
from repro.parallel import (
    CampaignOutcome,
    TrialFailure,
    canonical_json,
    default_chunk_size,
    default_jobs,
    fingerprint,
    run_trials,
    trial_seed,
    trial_seeds,
)


# ----------------------------------------------------------------------
# Workers (module-level: they must pickle into the worker processes)
# ----------------------------------------------------------------------


def _square(value):
    return value * value


def _flaky(value):
    if value == 5:
        raise ValueError("boom")
    return value * 2


def _kill_on_seven(value):
    if value == 7:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 3


def _unpicklable(value):
    if value == 2:
        return lambda: None  # functions don't pickle
    return value


# ----------------------------------------------------------------------
# Seeds
# ----------------------------------------------------------------------


def test_trial_seed_is_deterministic_and_index_sensitive():
    assert trial_seed(0, 0) == trial_seed(0, 0)
    seeds = trial_seeds(0, 50)
    assert seeds == trial_seeds(0, 50)
    assert len(set(seeds)) == 50, "adjacent indices must not collide"
    assert trial_seeds(1, 50) != seeds, "campaign seed must matter"
    # Stays inside the engine's seed space (and Rng's accepted range).
    assert all(0 <= s <= 0x7FFFFFFFFFFFFFFF for s in seeds)


def test_trial_seed_rejects_negative_index():
    with pytest.raises(SimulationError):
        trial_seed(0, -1)


# ----------------------------------------------------------------------
# Sharding and the serial path
# ----------------------------------------------------------------------


def test_serial_and_parallel_results_are_identical():
    tasks = list(range(17))
    serial = run_trials(_square, tasks, jobs=1)
    parallel = run_trials(_square, tasks, jobs=3, chunk_size=2)
    assert serial.results == [v * v for v in tasks]
    assert parallel.results == serial.results
    assert serial.ok and parallel.ok
    assert serial.jobs == 1 and parallel.jobs == 3


def test_results_merge_by_index_for_any_chunking():
    tasks = list(range(11))
    expected = [v * v for v in tasks]
    for chunk_size in (1, 2, 5, 11):
        outcome = run_trials(_square, tasks, jobs=2, chunk_size=chunk_size)
        assert outcome.results == expected, f"chunk_size={chunk_size}"


def test_jobs_are_clamped_to_task_count():
    outcome = run_trials(_square, [3], jobs=8)
    assert outcome.results == [9]
    assert outcome.jobs == 1  # one task -> the serial path


def test_empty_task_list():
    outcome = run_trials(_square, [], jobs=4)
    assert outcome.results == [] and outcome.ok


def test_invalid_jobs_rejected():
    with pytest.raises(SimulationError):
        run_trials(_square, [1, 2], jobs=0)


def test_default_chunk_size_bounds():
    assert default_chunk_size(0, 4) == 1
    assert default_chunk_size(100, 4) == 7  # ~4 chunks per worker
    assert default_chunk_size(3, 8) == 1
    assert default_jobs() >= 1


# ----------------------------------------------------------------------
# Failure isolation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 3])
def test_worker_exception_fails_only_that_trial(jobs):
    outcome = run_trials(_flaky, list(range(10)), jobs=jobs, chunk_size=2)
    assert outcome.results[5] is None
    assert [r for i, r in enumerate(outcome.results) if i != 5] == [
        v * 2 for v in range(10) if v != 5
    ]
    assert [f.index for f in outcome.failures] == [5]
    assert "ValueError: boom" in outcome.failures[0].error
    assert not outcome.ok
    with pytest.raises(SimulationError, match="trial 5"):
        outcome.require_ok("flaky")


def test_sigkilled_worker_fails_chunk_remainder_not_campaign():
    # chunk_size=2 over 0..9: the killer lands in chunk (6, 7).  Trial 6
    # streamed its result before the SIGKILL, so only 7 is lost; the
    # campaign completes and every other chunk is intact.
    outcome = run_trials(
        _kill_on_seven, list(range(10)), jobs=2, chunk_size=2
    )
    assert [f.index for f in outcome.failures] == [7]
    assert "worker died" in outcome.failures[0].error
    assert outcome.results[7] is None
    assert outcome.results[6] == 18
    for index in (0, 1, 2, 3, 4, 5, 8, 9):
        assert outcome.results[index] == index * 3
    assert outcome.failed_chunks == 1
    assert outcome.chunks == 5


def test_sigkill_before_first_result_fails_whole_chunk():
    # chunk_size=4 puts the killer first in its chunk (4..7): nothing
    # was reported, so the entire chunk is marked failed.
    tasks = [7, 8, 9, 10]
    outcome = run_trials(_kill_on_seven, tasks, jobs=2, chunk_size=4)
    assert [f.index for f in outcome.failures] == [0, 1, 2, 3]
    assert all("worker died" in f.error for f in outcome.failures)
    assert outcome.failed_chunks == 1


def test_unpicklable_result_fails_that_trial_only():
    outcome = run_trials(_unpicklable, list(range(4)), jobs=2, chunk_size=2)
    assert [f.index for f in outcome.failures] == [2]
    assert "not transferable" in outcome.failures[0].error
    assert outcome.results[3] == 3, "chunk continues past the bad trial"


# ----------------------------------------------------------------------
# Progress events
# ----------------------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_campaign_events_stream_to_the_bus(jobs):
    bus = EventBus()
    log = EventLog(bus, prefix="campaign.")
    outcome = run_trials(
        _square, list(range(6)), jobs=jobs, chunk_size=2, bus=bus,
        label="unit",
    )
    assert outcome.ok
    names = [event.name for event in log.events]
    assert names[0] == "campaign.start"
    assert names[-1] == "campaign.done"
    assert names.count("campaign.trial") == 6
    assert set(names) <= set(TAXONOMY)
    start = log.events[0]
    assert start.attrs["label"] == "unit"
    assert start.attrs["trials"] == 6
    assert start.attrs["jobs"] == jobs
    trial_indices = sorted(
        event.attrs["index"]
        for event in log.events
        if event.name == "campaign.trial"
    )
    assert trial_indices == list(range(6))


def test_parallel_run_leaves_global_rng_untouched():
    state = random.getstate()
    run_trials(_square, list(range(8)), jobs=2, chunk_size=2)
    run_trials(_square, list(range(8)), jobs=1)
    assert random.getstate() == state


# ----------------------------------------------------------------------
# Outcome type
# ----------------------------------------------------------------------


def test_outcome_require_ok_truncates_long_failure_lists():
    failures = [TrialFailure(i, "X") for i in range(8)]
    outcome = CampaignOutcome(results=[None] * 8, failures=failures)
    with pytest.raises(SimulationError, match=r"\.\.\. 3 more"):
        outcome.require_ok()


def test_outcome_throughput():
    outcome = CampaignOutcome(results=[1, 2], wall_seconds=0.5)
    assert outcome.trials_per_second == 4.0
    assert CampaignOutcome(results=[]).trials_per_second == 0.0


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------


def test_canonical_json_and_fingerprint_are_stable():
    payload = {"b": 1, "a": [2, 3]}
    text = canonical_json(payload)
    assert text.endswith("\n")
    assert json.loads(text) == payload
    assert fingerprint(payload) == fingerprint({"a": [2, 3], "b": 1})
    assert fingerprint(payload) != fingerprint({"a": [2, 3], "b": 2})
    assert len(fingerprint(payload)) == 8
