"""Serial/parallel bit-identity for the four campaign drivers.

The engine's contract is that ``--jobs N`` changes wall-clock time and
nothing else: per-seed results, verdicts, artifacts and report shapes
are bit-identical to the serial path.  These tests run each driver's
smoke-sized campaign at ``jobs=1`` and ``jobs=4`` and compare the full
semantic content (everything except wall-clock timings).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.analysis.model import ModelParams
from repro.analysis.montecarlo import simulate_averaged
from repro.analysis.sweep import sweep
from repro.chaos import ChaosProfile, run_campaign
from repro.check.explorer import explore

PARAMS = ModelParams(
    updates_per_second=40.0,
    failure_probability=0.02,
    items=25_000,
    recovery_rate=0.02,
    dependency_mean=2.0,
    update_independence=0.5,
)


def _explorer_content(report):
    """Everything semantic in an ExplorerReport (not the timings)."""
    return {
        "ok": report.ok,
        "failed_trials": report.failed_trials,
        "schedules": [r.schedule.to_dict() for r in report.results],
        "violations": [
            [str(v) for v in r.violations] for r in report.results
        ],
        "verdicts": [
            [(v.oracle, v.ok) for v in r.final_verdicts]
            for r in report.results
        ],
        "checkpoints": [r.quiescent_checkpoints for r in report.results],
        "events": [r.events_processed for r in report.results],
        "converged": [r.converged for r in report.results],
    }


def test_explorer_campaign_bit_identical(tmp_path):
    kwargs = dict(
        campaign_seed=3,
        trials=4,
        steps=6,
        include_enumeration=True,
    )
    serial = explore(
        jobs=1, artifact_dir=str(tmp_path / "serial"), **kwargs
    )
    parallel = explore(
        jobs=4, artifact_dir=str(tmp_path / "parallel"), **kwargs
    )
    assert _explorer_content(serial) == _explorer_content(parallel)
    # Identical artifact file sets (normally both empty: no violations).
    serial_files = sorted(os.listdir(tmp_path / "serial")) if (
        tmp_path / "serial"
    ).exists() else []
    parallel_files = sorted(os.listdir(tmp_path / "parallel")) if (
        tmp_path / "parallel"
    ).exists() else []
    assert serial_files == parallel_files


def test_chaos_campaign_bit_identical():
    profile = ChaosProfile()
    kwargs = dict(profile=profile, smoke=True, campaign_seed=5, trials=3)
    serial = run_campaign(jobs=1, **kwargs)
    parallel = run_campaign(jobs=4, **kwargs)
    assert _explorer_content(serial) == _explorer_content(parallel)
    assert serial.ok


def test_montecarlo_campaign_bit_identical():
    serial = simulate_averaged(PARAMS, runs=4, seed=11, jobs=1)
    parallel = simulate_averaged(PARAMS, runs=4, seed=11, jobs=4)
    assert [r.seed for r in serial] == [r.seed for r in parallel]
    assert [r.mean_polyvalues for r in serial] == [
        r.mean_polyvalues for r in parallel
    ]
    assert [r.transactions for r in serial] == [
        r.transactions for r in parallel
    ]
    assert [r.failures for r in serial] == [r.failures for r in parallel]
    assert [
        r.series.points for r in serial
    ] == [r.series.points for r in parallel]


def test_sweep_bit_identical():
    values = [0.01, 0.02, 0.2]  # the last point is unstable and skipped
    serial = sweep(
        PARAMS, "failure_probability", values,
        run_simulation=True, seed=2, jobs=1,
    )
    parallel = sweep(
        PARAMS, "failure_probability", values,
        run_simulation=True, seed=2, jobs=4,
    )
    assert [(p.value, p.model, p.simulated) for p in serial] == [
        (p.value, p.model, p.simulated) for p in parallel
    ]


def test_campaigns_leave_global_rng_untouched():
    state = random.getstate()
    run_campaign(smoke=True, campaign_seed=1, trials=2, jobs=4)
    explore(campaign_seed=1, trials=2, steps=4,
            include_enumeration=False, jobs=4)
    simulate_averaged(PARAMS, runs=2, seed=1, jobs=4)
    assert random.getstate() == state


def test_seed_override_still_supported():
    # Explicit seed iterables (the pre-engine API) pin the exact walk
    # seeds, serial or parallel.
    serial = run_campaign(smoke=True, seeds=[4, 9], jobs=1)
    parallel = run_campaign(smoke=True, seeds=[4, 9], jobs=4)
    assert [r.schedule.seed for r in serial.results] == [4, 4, 9, 9]
    assert _explorer_content(serial) == _explorer_content(parallel)
