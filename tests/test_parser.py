"""Tests for the condition expression parser (repro.core.parser)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import Condition, Literal
from repro.core.errors import ConditionError
from repro.core.parser import parse_condition

T1, T2, T3 = (Condition.of(t) for t in ("T1", "T2", "T3"))


class TestBasicParsing:
    def test_single_identifier(self):
        assert parse_condition("T1") == T1

    def test_negation(self):
        assert parse_condition("~T1") == ~T1

    def test_double_negation(self):
        assert parse_condition("~~T1") == T1

    def test_conjunction(self):
        assert parse_condition("T1 & T2") == (T1 & T2)

    def test_disjunction(self):
        assert parse_condition("T1 | T2") == (T1 | T2)

    def test_precedence_and_over_or(self):
        parsed = parse_condition("T1 | T2 & T3")
        assert parsed.equivalent(T1 | (T2 & T3))
        assert not parsed.equivalent((T1 | T2) & T3)

    def test_parentheses_override(self):
        parsed = parse_condition("(T1 | T2) & T3")
        assert parsed.equivalent((T1 | T2) & T3)

    def test_negation_binds_tightest(self):
        parsed = parse_condition("~T1 & T2")
        assert parsed.equivalent(~T1 & T2)

    def test_negated_group(self):
        parsed = parse_condition("~(T1 & T2)")
        assert parsed.equivalent(~(T1 & T2))

    def test_constants(self):
        assert parse_condition("TRUE").is_true()
        assert parse_condition("FALSE").is_false()
        assert parse_condition("true").is_true()

    def test_paper_example(self):
        # "T1 (T2 T3)" in the paper's notation.
        parsed = parse_condition("T1 & (T2 | T3)")
        assert parsed.evaluate({"T1": True, "T2": False, "T3": True})
        assert not parsed.evaluate({"T1": False, "T2": True, "T3": True})

    def test_realistic_txn_ids(self):
        parsed = parse_condition("T17@site-0 & ~T3@site-2")
        assert parsed.variables() == frozenset({"T17@site-0", "T3@site-2"})

    def test_whitespace_flexible(self):
        assert parse_condition("  T1&~T2  ") == parse_condition("T1 & ~T2")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "&",
            "T1 &",
            "T1 T2",
            "(T1",
            "T1)",
            "T1 | | T2",
            "T1 @ T2",
            "~",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConditionError):
            parse_condition(bad)


TXNS = ["T1", "T2", "T3"]
literals = st.builds(Literal, txn=st.sampled_from(TXNS), positive=st.booleans())
conditions = st.lists(
    st.frozensets(literals, min_size=0, max_size=3), min_size=0, max_size=4
).map(Condition)


@given(conditions)
@settings(max_examples=100)
def test_property_str_roundtrip(condition):
    # str() renders TRUE/FALSE/products with & and |; the parser must
    # accept exactly that format and recover an equivalent condition.
    parsed = parse_condition(str(condition))
    assert parsed == condition
