"""Tests for partition groups and app-workload streaming."""

import pytest

from repro.core.errors import SimulationError
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.rand import Rng
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.banking import BankingWorkload, account_items
from repro.workloads.generator import ArrivalProcess
from repro.workloads.inventory import InventoryWorkload
from repro.workloads.reservations import ReservationsWorkload, flight_items

from tests.conftest import move, run_to_decision


class TestPartitionGroups:
    def make_network(self):
        sim = Simulator()
        network = Network(sim, Rng(0))
        for site in ("s0", "s1", "s2", "s3"):
            network.register(site, lambda e: None)
        return network

    def test_groups_block_cross_traffic(self):
        network = self.make_network()
        network.partition_groups([["s0"], ["s1", "s2"]])
        assert network.is_partitioned("s0", "s1")
        assert network.is_partitioned("s0", "s2")
        assert not network.is_partitioned("s1", "s2")

    def test_sites_outside_groups_unaffected(self):
        network = self.make_network()
        network.partition_groups([["s0"], ["s1"]])
        assert not network.is_partitioned("s0", "s3")
        assert not network.is_partitioned("s1", "s3")

    def test_three_way_split(self):
        network = self.make_network()
        network.partition_groups([["s0"], ["s1"], ["s2", "s3"]])
        assert network.is_partitioned("s0", "s1")
        assert network.is_partitioned("s1", "s2")
        assert network.is_partitioned("s0", "s3")
        assert not network.is_partitioned("s2", "s3")

    def test_minority_partition_cannot_commit_cross_group(self):
        system = DistributedSystem.build(
            sites=3, items={"a": 1, "b": 2, "c": 3}, seed=4
        )
        system.network.partition_groups([["site-0"], ["site-1", "site-2"]])
        blocked = system.submit(move("a", "b", 1))  # spans the split
        inside = system.submit(move("b", "c", 1), at="site-1")
        run_to_decision(system, blocked)
        run_to_decision(system, inside)
        assert blocked.status is TxnStatus.ABORTED
        assert inside.status is TxnStatus.COMMITTED


class TestArrivalProcess:
    def test_rate_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            ArrivalProcess(sim, 0.0, lambda: None, Rng(0))

    def test_arrivals_fire_at_roughly_the_rate(self):
        sim = Simulator()
        fired = []
        ArrivalProcess(sim, 50.0, lambda: fired.append(sim.now), Rng(1))
        sim.run_until(10.0)
        assert len(fired) == pytest.approx(500, rel=0.25)

    def test_stop_halts(self):
        sim = Simulator()
        fired = []
        process = ArrivalProcess(sim, 10.0, lambda: fired.append(1), Rng(1))
        sim.run_until(2.0)
        process.stop()
        count = len(fired)
        sim.run_until(10.0)
        assert len(fired) == count


class TestWorkloadStreams:
    def test_banking_stream(self):
        system = DistributedSystem.build(
            sites=3,
            items={acct: 500 for acct in account_items(4)},
            seed=6,
        )
        workload = BankingWorkload(system, account_items(4), seed=6)
        workload.stream(rate=10.0)
        system.run_for(3.0)
        workload.stop_stream()
        system.run_for(3.0)
        assert len(workload.handles) > 10
        decided = [
            h for h in workload.handles if h.status is not TxnStatus.PENDING
        ]
        assert len(decided) == len(workload.handles)

    def test_reservations_stream(self):
        system = DistributedSystem.build(
            sites=3,
            items={flight: 0 for flight in flight_items(3)},
            seed=7,
        )
        workload = ReservationsWorkload(
            system, {flight: 50 for flight in flight_items(3)}, seed=7
        )
        workload.stream(rate=8.0)
        system.run_for(3.0)
        workload.stop_stream()
        system.run_for(3.0)
        assert len(workload.handles) > 5

    def test_inventory_stream(self):
        from repro.workloads.inventory import stock_items

        system = DistributedSystem.build(
            sites=3,
            items={item: 40 for item in stock_items(["e", "w"], ["p"])},
            seed=8,
        )
        workload = InventoryWorkload(system, ["e", "w"], ["p"], seed=8)
        workload.stream(rate=8.0)
        system.run_for(3.0)
        workload.stop_stream()
        system.run_for(3.0)
        assert len(workload.handles) > 5

    def test_stop_stream_without_start_is_noop(self):
        system = DistributedSystem.build(
            sites=2, items={acct: 1 for acct in account_items(2)}, seed=1
        )
        workload = BankingWorkload(system, account_items(2), seed=1)
        workload.stop_stream()  # no error
