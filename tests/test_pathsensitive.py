"""Unit tests for path-sensitive commit (coordination avoidance).

Covers the finite-difference pre-analysis (transfers and increments
decompose; copies and thresholds do not), the three routing kinds
(local, decomposable, coordinated), immediate commit with asynchronous
effect shipping, retransmission of effects across a crash/recover, and
the durable-state drain the convergence oracle audits.
"""

from repro.obs.events import EventLog
from repro.txn.baselines import path_sensitive_system
from repro.txn.pathsensitive import decompose
from repro.txn.transaction import Transaction, TxnStatus

from tests.conftest import increment, move, run_to_decision

ITEMS = {f"item-{index}": 100 for index in range(6)}


def _build(seed=42, **kwargs):
    return path_sensitive_system(
        sites=3, items=dict(ITEMS), seed=seed, **kwargs
    )


def _copy(source, target):
    def body(ctx):
        ctx.write(target, ctx.read(source))

    return Transaction(body=body, items=(source, target), label="copy")


def _threshold(item, floor, amount):
    def body(ctx):
        balance = ctx.read(item)
        if balance - amount >= floor:
            ctx.write(item, balance - amount)

    return Transaction(body=body, items=(item,), label="threshold")


class TestDecompose:
    def test_transfer_decomposes_to_opposite_deltas(self):
        decomposition = decompose(move("item-0", "item-1", 25))
        assert decomposition is not None
        assert decomposition.deltas == {"item-0": -25, "item-1": 25}

    def test_increment_decomposes(self):
        decomposition = decompose(increment("item-2", 7))
        assert decomposition is not None
        assert decomposition.deltas == {"item-2": 7}

    def test_copy_is_order_sensitive(self):
        assert decompose(_copy("item-0", "item-1")) is None

    def test_threshold_is_order_sensitive(self):
        assert decompose(_threshold("item-0", 0, 50)) is None

    def test_probe_is_deterministic(self):
        transaction = move("item-0", "item-1", 13)
        assert decompose(transaction) == decompose(transaction)


class TestRouting:
    def test_single_site_txn_runs_local(self):
        system = _build()
        log = EventLog(system.bus, prefix="path.classify")
        # item-0 lives on site-0; submitted there it never leaves.
        handle = system.submit(increment("item-0"), at="site-0")
        assert handle.status is TxnStatus.COMMITTED
        assert [e.attrs["kind"] for e in log] == ["local"]
        assert system.network.stats.sent == 0

    def test_multi_site_transfer_commits_immediately(self):
        system = _build()
        log = EventLog(system.bus, prefix="path.classify")
        handle = system.submit(move("item-0", "item-1", 25))
        # No coordination round: committed at submit time.
        assert handle.status is TxnStatus.COMMITTED
        assert [e.attrs["kind"] for e in log] == ["decomposable"]
        assert system.run_to_quiescence(max_time=system.sim.now + 10.0)
        assert system.read_item("item-0") == 75
        assert system.read_item("item-1") == 125

    def test_copy_falls_back_to_coordination(self):
        system = _build()
        log = EventLog(system.bus, prefix="path.classify")
        handle = system.submit(_copy("item-0", "item-1"))
        assert handle.status is TxnStatus.PENDING
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert [e.attrs["kind"] for e in log] == ["coordinated"]
        assert system.run_to_quiescence(max_time=system.sim.now + 10.0)
        assert system.read_item("item-1") == 100

    def test_registry_records_every_routing_decision(self):
        system = _build()
        for transaction in (
            increment("item-0"),
            move("item-0", "item-1", 5),
            _copy("item-2", "item-3"),
        ):
            handle = system.submit(transaction, at="site-0")
            run_to_decision(system, handle)
        registry = system.path_registry
        assert len(registry.by_kind("local")) == 1
        assert len(registry.by_kind("decomposable")) == 1
        assert len(registry.by_kind("coordinated")) == 1


class TestEffectShipping:
    def test_remote_deltas_survive_target_crash(self):
        system = _build()
        log = EventLog(system.bus, prefix="path.apply")
        # item-1 lives on site-1: crash it, commit a transfer into it,
        # recover it — the origin retransmits until acknowledged.
        system.crash_site("site-1")
        system.run_for(0.1)
        handle = system.submit(move("item-0", "item-1", 25), at="site-0")
        assert handle.status is TxnStatus.COMMITTED
        system.run_for(1.0)
        assert system.read_item("item-0") == 75
        system.recover_site("site-1")
        assert system.settle(max_time=system.sim.now + 120.0)
        assert system.read_item("item-1") == 125
        applied = {(e.site, e.attrs["item"]) for e in log}
        assert ("site-1", "item-1") in applied

    def test_residue_drains_after_quiescence(self):
        system = _build()
        for transaction in (
            move("item-0", "item-1", 10),
            move("item-2", "item-5", 20),
            increment("item-4", 3),
        ):
            system.submit(transaction)
            system.run_for(0.2)
        assert system.run_to_quiescence(max_time=system.sim.now + 30.0)
        assert system.total_protocol_residue() == 0
        for site in system.sites.values():
            assert site.protocol_residue() == 0

    def test_applies_are_idempotent(self):
        system = _build()
        system.submit(move("item-0", "item-1", 10))
        assert system.run_to_quiescence(max_time=system.sim.now + 10.0)
        site = system.sites["site-1"]
        (key,) = [k for k in site.applied if k[1] == "item-1"]
        before = system.read_item("item-1")
        assert site._apply_delta(key[0], key[1], site.applied[key])
        assert system.read_item("item-1") == before
