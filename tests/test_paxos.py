"""Unit tests for Paxos Commit (Gray & Lamport) as a bake-off peer.

Covers the configuration-derived acceptor sets (2F+1, clamped to the
site count), the ballot-0 fast path on failure-free runs, the
no-polyvalues invariant, acceptor failover deciding a transaction
whose coordinator crashed, and the durable-state drain that the
convergence oracle audits.
"""

from repro.obs.events import EventLog
from repro.txn.baselines import paxos_commit_system
from repro.txn.transaction import TxnStatus

from tests.conftest import increment, move, run_to_decision

ITEMS = {f"item-{index}": 100 for index in range(6)}


def _build(sites=3, fault_tolerance=None, seed=42):
    return paxos_commit_system(
        sites=sites,
        items=dict(ITEMS),
        seed=seed,
        fault_tolerance=fault_tolerance,
    )


class TestAcceptorConfiguration:
    def test_default_is_largest_supported_f(self):
        site = _build(sites=3).sites["site-0"]
        assert site.fault_tolerance() == 1
        assert site.acceptor_set() == ("site-0", "site-1", "site-2")
        assert site.quorum() == 2

    def test_five_sites_tolerate_two_faults(self):
        site = _build(sites=5).sites["site-0"]
        assert site.fault_tolerance() == 2
        assert len(site.acceptor_set()) == 5
        assert site.quorum() == 3

    def test_configured_f_is_clamped_to_site_count(self):
        site = _build(sites=3, fault_tolerance=7).sites["site-0"]
        assert site.fault_tolerance() == 1
        assert len(site.acceptor_set()) == 3

    def test_zero_f_degenerates_to_single_acceptor(self):
        site = _build(sites=3, fault_tolerance=0).sites["site-0"]
        assert site.fault_tolerance() == 0
        assert site.acceptor_set() == ("site-0",)
        assert site.quorum() == 1

    def test_acceptor_set_agrees_across_sites(self):
        system = _build(sites=5)
        sets = {site.acceptor_set() for site in system.sites.values()}
        assert len(sets) == 1


class TestFailureFree:
    def test_multi_site_transfer_commits_on_ballot_zero(self):
        system = _build()
        log = EventLog(system.bus, prefix="paxos.")
        handle = system.submit(move("item-0", "item-1", 25))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-0") == 75
        assert system.read_item("item-1") == 125
        decides = log.named("paxos.decide")
        assert decides and all(e.attrs["ballot"] == 0 for e in decides)
        assert all(e.attrs["committed"] for e in decides)
        # No failover ever started: paxos.ballot marks Phase1 rounds.
        assert log.named("paxos.ballot") == []

    def test_paxos_never_installs_polyvalues(self):
        system = _build()
        for transaction in (
            move("item-0", "item-1", 10),
            increment("item-2", 5),
            move("item-3", "item-4", 20),
        ):
            handle = system.submit(transaction)
            run_to_decision(system, handle)
            assert handle.status is TxnStatus.COMMITTED
            assert system.total_polyvalues() == 0
        assert system.polyvalued_items() == []

    def test_decision_board_records_every_outcome(self):
        system = _build()
        handle = system.submit(move("item-0", "item-1", 10))
        run_to_decision(system, handle)
        assert system.decision_board.decided(handle.txn) is True
        assert system.decision_board.conflicts == []

    def test_durable_state_drains(self):
        system = _build()
        handle = system.submit(move("item-0", "item-1", 10))
        run_to_decision(system, handle)
        assert system.run_to_quiescence(max_time=system.sim.now + 30.0)
        assert system.total_protocol_residue() == 0


class TestFailover:
    def _crashed_coordinator(self, crash_at=0.050):
        """A transfer on sites 1 and 2 whose non-participant
        coordinator (site-0) crashes inside the wait phase."""
        system = _build()
        log = EventLog(system.bus, prefix="paxos.")
        handle = system.submit(move("item-1", "item-2", 25), at="site-0")
        system.run_for(crash_at)
        system.crash_site("site-0")
        system.run_for(2.0)
        return system, handle, log

    def test_acceptors_decide_while_coordinator_is_down(self):
        system, handle, log = self._crashed_coordinator()
        assert system.down_sites() == ["site-0"]
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-1") == 75
        assert system.read_item("item-2") == 125
        # The decision came from a failover ballot, not ballot 0.
        assert log.named("paxos.ballot"), "no Phase1 round was started"
        assert any(
            event.attrs["ballot"] > 0 and event.attrs["committed"]
            for event in log.named("paxos.decide")
        )

    def test_no_polyvalues_during_failover(self):
        system, _, _ = self._crashed_coordinator()
        assert system.total_polyvalues() == 0

    def test_recovered_coordinator_converges(self):
        system, handle, _ = self._crashed_coordinator()
        system.recover_site("site-0")
        assert system.settle(max_time=system.sim.now + 120.0)
        assert handle.status is TxnStatus.COMMITTED
        assert system.decision_board.conflicts == []
        assert system.total_protocol_residue() == 0

    def test_tolerates_f_acceptor_crashes(self):
        # F=2 with five sites: crash two non-participant acceptors in
        # the wait phase and the transfer must still commit.
        system = _build(sites=5)
        handle = system.submit(move("item-0", "item-1", 25), at="site-0")
        system.run_for(0.045)
        system.crash_site("site-3")
        system.crash_site("site-4")
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
