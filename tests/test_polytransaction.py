"""Unit tests for the polytransaction engine (repro.core.polytransaction)."""

import pytest

from repro.core.conditions import Condition
from repro.core.errors import TransactionError
from repro.core.polytransaction import (
    TooManyAlternativesError,
    execute,
)
from repro.core.polyvalue import Polyvalue, is_polyvalue


def in_doubt(txn, new, old):
    return Polyvalue.in_doubt(txn, new, old)


class TestSimpleExecution:
    def test_single_alternative_for_simple_inputs(self):
        def body(ctx):
            ctx.write("out", ctx.read("a") + ctx.read("b"))

        result = execute(body, {"a": 1, "b": 2, "out": 0})
        assert result.is_simple()
        assert result.merged_writes({"out": 0}) == {"out": 3}

    def test_returned_mapping_is_merged(self):
        def body(ctx):
            return {"out": ctx.read("a") * 10}

        result = execute(body, {"a": 3, "out": 0})
        assert result.merged_writes({"out": 0}) == {"out": 30}

    def test_explicit_write_and_return_combined(self):
        def body(ctx):
            ctx.write("x", 1)
            return {"y": 2}

        result = execute(body, {"x": 0, "y": 0})
        assert result.merged_writes({}) == {"x": 1, "y": 2}

    def test_outputs_collected(self):
        def body(ctx):
            ctx.output("answer", 42)

        result = execute(body, {})
        assert result.merged_outputs() == {"answer": 42}

    def test_reads_recorded(self):
        def body(ctx):
            ctx.read("a")
            ctx.read("b")

        result = execute(body, {"a": 1, "b": 2})
        assert result.read_items() == ["a", "b"]

    def test_unknown_item_read_raises(self):
        def body(ctx):
            ctx.read("missing")

        with pytest.raises(TransactionError):
            execute(body, {})

    def test_condition_of_single_alternative_is_true(self):
        result = execute(lambda ctx: None, {})
        assert result.alternatives[0].condition.is_true()


class TestPartitioning:
    def test_read_of_polyvalue_forks(self):
        snapshot = {"a": in_doubt("T1", 10, 20)}

        def body(ctx):
            ctx.write("a", ctx.read("a") + 1)

        result = execute(body, snapshot)
        assert len(result.alternatives) == 2
        merged = result.merged_writes(snapshot)
        assert set(merged["a"].possible_values()) == {11, 21}

    def test_alternative_conditions_partition(self):
        snapshot = {"a": in_doubt("T1", 10, 20)}
        result = execute(lambda ctx: ctx.output("v", ctx.read("a")), snapshot)
        conditions = [alt.condition for alt in result.alternatives]
        assert (conditions[0] | conditions[1]).is_true()
        assert (conditions[0] & conditions[1]).is_false()

    def test_two_independent_polyvalues_four_alternatives(self):
        snapshot = {
            "a": in_doubt("T1", 1, 2),
            "b": in_doubt("T2", 10, 20),
        }

        def body(ctx):
            ctx.write("sum", ctx.read("a") + ctx.read("b"))

        result = execute(body, {**snapshot, "sum": 0})
        assert len(result.alternatives) == 4
        merged = result.merged_writes({"sum": 0})
        assert set(merged["sum"].possible_values()) == {11, 21, 12, 22}

    def test_correlated_polyvalues_prune_false_alternatives(self):
        # Both items depend on the same transaction: only 2 of the 4
        # combinations are consistent (§3.2's discard rule).
        snapshot = {
            "a": in_doubt("T1", 1, 2),
            "b": in_doubt("T1", 10, 20),
        }

        def body(ctx):
            ctx.write("sum", ctx.read("a") + ctx.read("b"))

        result = execute(body, {**snapshot, "sum": 0})
        assert len(result.alternatives) == 2
        merged = result.merged_writes({"sum": 0})
        assert set(merged["sum"].possible_values()) == {11, 22}

    def test_rereading_same_item_does_not_refork(self):
        snapshot = {"a": in_doubt("T1", 1, 2)}

        def body(ctx):
            first = ctx.read("a")
            second = ctx.read("a")
            assert first == second
            ctx.write("a", first + second)

        result = execute(body, snapshot)
        assert len(result.alternatives) == 2

    def test_branch_dependent_read_sets(self):
        # One alternative reads item b, the other does not: partitioning
        # is dynamic, driven by the actual control flow.
        snapshot = {
            "a": in_doubt("T1", 1, 0),
            "b": in_doubt("T2", 100, 200),
        }

        def body(ctx):
            if ctx.read("a") == 1:
                ctx.write("out", ctx.read("b"))
            else:
                ctx.write("out", -1)

        result = execute(body, {**snapshot, "out": 0})
        # a=1 branch forks on b (2 alternatives); a=0 branch doesn't (1).
        assert len(result.alternatives) == 3
        merged = result.merged_writes({"out": 0})
        assert set(merged["out"].possible_values()) == {100, 200, -1}

    def test_value_independent_result_is_simple(self):
        # "Any transaction whose outputs do not depend on the exact
        # correct value of a polyvalued input produces simple values."
        snapshot = {"a": in_doubt("T1", 10, 20)}

        def body(ctx):
            ctx.write("flag", ctx.read("a") >= 5)

        result = execute(body, {**snapshot, "flag": False})
        merged = result.merged_writes({"flag": False})
        assert merged["flag"] is True

    def test_fan_out_limit_enforced(self):
        snapshot = {
            f"item{i}": in_doubt(f"T{i}", 0, 1) for i in range(5)
        }

        def body(ctx):
            total = 0
            for i in range(5):
                total += ctx.read(f"item{i}")
            ctx.write("total", total)

        with pytest.raises(TooManyAlternativesError):
            execute(body, {**snapshot, "total": 0}, max_alternatives=8)


class TestReadRaw:
    def test_read_raw_does_not_fork(self):
        snapshot = {"a": in_doubt("T1", 10, 20)}

        def body(ctx):
            value = ctx.read_raw("a")
            assert is_polyvalue(value)
            ctx.output("seen", sorted(value.possible_values()))

        result = execute(body, snapshot)
        assert result.is_simple()
        assert result.merged_outputs()["seen"] == [10, 20]

    def test_read_raw_after_fork_returns_pin(self):
        snapshot = {"a": in_doubt("T1", 10, 20)}

        def body(ctx):
            pinned = ctx.read("a")
            raw = ctx.read_raw("a")
            assert pinned == raw
            ctx.write("a", pinned)

        result = execute(body, snapshot)
        assert len(result.alternatives) == 2


class TestMergedWrites:
    def test_unwritten_alternative_takes_previous_value(self):
        # "or is the previous value of the item if transaction T_ci does
        # not compute a new value for the item"
        snapshot = {"a": in_doubt("T1", 100, 50), "b": 7}

        def body(ctx):
            if ctx.read("a") >= 100:
                ctx.write("b", 99)

        result = execute(body, snapshot)
        merged = result.merged_writes(snapshot)
        assert set(merged["b"].possible_values()) == {99, 7}

    def test_previous_value_polyvalue_flattens(self):
        previous_b = in_doubt("T2", 1, 2)
        snapshot = {"a": in_doubt("T1", 100, 50), "b": previous_b}

        def body(ctx):
            if ctx.read("a") >= 100:
                ctx.write("b", 99)

        merged = execute(body, snapshot).merged_writes(snapshot)
        assert set(merged["b"].possible_values()) == {99, 1, 2}

    def test_missing_previous_value_raises(self):
        snapshot = {"a": in_doubt("T1", 100, 50)}

        def body(ctx):
            if ctx.read("a") >= 100:
                ctx.write("new-item", 1)

        result = execute(body, snapshot)
        with pytest.raises(Exception):
            result.merged_writes({})

    def test_written_items_stable_order(self):
        def body(ctx):
            ctx.write("z", 1)
            ctx.write("a", 2)

        result = execute(body, {})
        assert result.written_items() == ["z", "a"]


class TestMergedOutputs:
    def test_output_produced_by_single_branch(self):
        snapshot = {"a": in_doubt("T1", 100, 50)}

        def body(ctx):
            if ctx.read("a") >= 100:
                ctx.output("alert", "high")

        outputs = execute(body, snapshot).merged_outputs()
        assert set(outputs["alert"].possible_values()) == {"high", None}

    def test_agreeing_outputs_collapse(self):
        snapshot = {"a": in_doubt("T1", 100, 150)}

        def body(ctx):
            ctx.output("ok", ctx.read("a") >= 100)

        assert execute(body, snapshot).merged_outputs()["ok"] is True

    def test_disagreeing_outputs_stay_poly(self):
        snapshot = {"a": in_doubt("T1", 100, 150)}

        def body(ctx):
            ctx.output("exact", ctx.read("a"))

        outputs = execute(body, snapshot).merged_outputs()
        assert set(outputs["exact"].possible_values()) == {100, 150}
