"""Unit tests for the polyvalue data structure (repro.core.polyvalue)."""

import pytest

from repro.core.conditions import Condition
from repro.core.errors import (
    IncompleteConditionsError,
    OverlappingConditionsError,
    PolyvalueError,
    UncertainValueError,
)
from repro.core.polyvalue import (
    Polyvalue,
    as_pairs,
    certain,
    combine,
    definitely,
    depends_on,
    is_polyvalue,
    possible_values,
    possibly,
    reduce_value,
    simplify,
)

T1 = Condition.of("T1")
T2 = Condition.of("T2")


def in_doubt(new, old, txn="T1"):
    return Polyvalue([(new, Condition.of(txn)), (old, Condition.not_of(txn))])


class TestConstruction:
    def test_basic_two_pair_polyvalue(self):
        pv = in_doubt(130, 100)
        assert pv.possible_values() == [130, 100] or pv.possible_values() == [100, 130]
        assert len(pv) == 2

    def test_conditions_must_be_complete(self):
        with pytest.raises(IncompleteConditionsError):
            Polyvalue([(1, T1 & T2), (2, ~T1 & ~T2)])

    def test_conditions_must_be_disjoint(self):
        with pytest.raises(OverlappingConditionsError):
            Polyvalue([(1, T1), (2, Condition.true())])

    def test_validation_can_be_disabled(self):
        pv = Polyvalue([(1, T1 & T2), (2, ~T1 & ~T2)], validate=False)
        assert len(pv) == 2

    def test_empty_pairs_rejected(self):
        with pytest.raises(PolyvalueError):
            Polyvalue([])

    def test_all_false_pairs_rejected(self):
        with pytest.raises(PolyvalueError):
            Polyvalue([(1, Condition.false())])

    def test_non_condition_rejected(self):
        with pytest.raises(PolyvalueError):
            Polyvalue([(1, "T1")])

    def test_false_condition_pair_discarded(self):
        pv = Polyvalue([(1, T1), (2, ~T1), (3, Condition.false())])
        assert 3 not in pv.possible_values()

    def test_pairs_sorted_deterministically(self):
        a = Polyvalue([(1, T1), (2, ~T1)])
        b = Polyvalue([(2, ~T1), (1, T1)])
        assert a.pairs == b.pairs


class TestSimplificationRule1Flattening:
    def test_nested_polyvalue_is_flattened(self):
        inner = in_doubt(100, 150, "T1")
        outer = Polyvalue([(inner, T2), (7, ~T2)])
        values = set(outer.possible_values())
        assert values == {100, 150, 7}
        # No value in the flattened polyvalue is itself a polyvalue.
        assert not any(is_polyvalue(v) for v in outer.possible_values())

    def test_flattened_conditions_are_products(self):
        inner = in_doubt(100, 150, "T1")
        outer = Polyvalue([(inner, T2), (7, ~T2)])
        assert outer.value_under({"T1": True, "T2": True}) == 100
        assert outer.value_under({"T1": False, "T2": True}) == 150
        assert outer.value_under({"T1": True, "T2": False}) == 7

    def test_double_nesting_flattens(self):
        level1 = in_doubt(1, 2, "T1")
        level2 = Polyvalue([(level1, T2), (3, ~T2)])
        level3 = Polyvalue([(level2, Condition.of("T3")), (4, Condition.not_of("T3"))])
        assert set(level3.possible_values()) == {1, 2, 3, 4}


class TestSimplificationRule2Merging:
    def test_equal_values_merge(self):
        pv = Polyvalue([(5, T1), (5, ~T1)])
        assert pv.is_certain()
        assert pv.certain_value() == 5

    def test_merge_produces_or_of_conditions(self):
        pv = Polyvalue(
            [(5, T1 & T2), (5, ~T1 & T2), (9, ~T2)]
        )
        assert len(pv) == 2
        assert pv.value_under({"T1": True, "T2": True}) == 5
        assert pv.value_under({"T1": False, "T2": True}) == 5

    def test_bool_and_int_do_not_merge(self):
        pv = Polyvalue([(True, T1), (1, ~T1)])
        assert len(pv) == 2

    def test_zero_and_false_do_not_merge(self):
        pv = Polyvalue([(0, T1), (False, ~T1)])
        assert len(pv) == 2

    def test_in_doubt_same_values_collapses(self):
        result = Polyvalue.in_doubt("T1", 10, 10)
        assert result == 10


class TestDependsOn:
    def test_depends_on_lists_all_mentioned_txns(self):
        inner = in_doubt(100, 150, "T1")
        outer = Polyvalue([(inner, T2), (7, ~T2)])
        assert outer.depends_on() == frozenset({"T1", "T2"})

    def test_module_depends_on_simple_value_is_empty(self):
        assert depends_on(42) == frozenset()

    def test_module_depends_on_polyvalue(self):
        assert depends_on(in_doubt(1, 2)) == frozenset({"T1"})


class TestReduce:
    def test_reduce_to_committed_value(self):
        assert in_doubt(130, 100).reduce({"T1": True}) == 130

    def test_reduce_to_aborted_value(self):
        assert in_doubt(130, 100).reduce({"T1": False}) == 100

    def test_partial_reduce_keeps_polyvalue(self):
        inner = in_doubt(100, 150, "T1")
        outer = Polyvalue([(inner, T2), (7, ~T2)])
        partially = outer.reduce({"T2": True})
        assert is_polyvalue(partially)
        assert set(partially.possible_values()) == {100, 150}

    def test_full_reduce_eliminates_uncertainty(self):
        inner = in_doubt(100, 150, "T1")
        outer = Polyvalue([(inner, T2), (7, ~T2)])
        assert outer.reduce({"T1": False, "T2": True}) == 150

    def test_reduce_with_irrelevant_outcome_is_same(self):
        pv = in_doubt(130, 100)
        assert reduce_value(pv, {"T9": True}) == pv

    def test_reduce_value_on_simple_value(self):
        assert reduce_value(10, {"T1": True}) == 10


class TestCertainty:
    def test_certain_value_raises_when_uncertain(self):
        with pytest.raises(UncertainValueError):
            in_doubt(1, 2).certain_value()

    def test_collapse_returns_plain_value(self):
        assert Polyvalue([(5, T1), (5, ~T1)]).collapse() == 5

    def test_collapse_keeps_uncertain_polyvalue(self):
        pv = in_doubt(1, 2)
        assert pv.collapse() is pv

    def test_certain_on_simple_value(self):
        assert certain(10) == 10

    def test_certain_on_uncertain_polyvalue_raises(self):
        with pytest.raises(UncertainValueError):
            certain(in_doubt(1, 2))

    def test_value_under_complete_assignment(self):
        assert in_doubt(130, 100).value_under({"T1": True}) == 130


class TestMap:
    def test_map_applies_to_all_values(self):
        doubled = in_doubt(10, 20).map(lambda v: v * 2)
        assert set(doubled.possible_values()) == {20, 40}

    def test_map_collapsing_projection(self):
        # The §3.2 property: an output that does not depend on the exact
        # value is simple.
        assert in_doubt(10, 20).map(lambda v: v > 5) is True


class TestCombine:
    def test_combine_simple_values(self):
        assert combine(lambda a, b: a + b, 1, 2) == 3

    def test_combine_poly_and_simple(self):
        result = combine(lambda a, b: a + b, in_doubt(10, 20), 5)
        assert set(result.possible_values()) == {15, 25}

    def test_combine_collapses_value_independent_result(self):
        assert combine(lambda v: v >= 5, in_doubt(10, 20)) is True

    def test_combine_correlated_operands_prunes_impossible(self):
        # Two items uncertain on the SAME transaction: only the
        # diagonal combinations are possible.
        source = in_doubt(70, 100)  # T1 committed -> 70
        target = in_doubt(130, 100)  # T1 committed -> 130
        total = combine(lambda a, b: a + b, source, target)
        assert total == 200

    def test_combine_independent_operands_full_product(self):
        a = in_doubt(1, 2, "T1")
        b = in_doubt(10, 20, "T2")
        result = combine(lambda x, y: x + y, a, b)
        assert set(result.possible_values()) == {11, 21, 12, 22}

    def test_combine_no_operands(self):
        assert combine(lambda: 7) == 7


class TestModalQueries:
    def test_definitely_true_for_all_possibilities(self):
        assert definitely(lambda v: v >= 100, in_doubt(130, 100))

    def test_definitely_false_when_one_fails(self):
        assert not definitely(lambda v: v > 100, in_doubt(130, 100))

    def test_possibly_true_when_one_holds(self):
        assert possibly(lambda v: v > 100, in_doubt(130, 100))

    def test_possibly_false_when_none_hold(self):
        assert not possibly(lambda v: v > 200, in_doubt(130, 100))

    def test_modal_on_simple_values(self):
        assert definitely(lambda v: v == 5, 5)
        assert not possibly(lambda v: v == 6, 5)


class TestHelpers:
    def test_as_pairs_on_simple_value(self):
        pairs = as_pairs(42)
        assert len(pairs) == 1
        assert pairs[0][0] == 42
        assert pairs[0][1].is_true()

    def test_as_pairs_on_polyvalue(self):
        assert len(as_pairs(in_doubt(1, 2))) == 2

    def test_simplify_collapses_certain_polyvalue(self):
        assert simplify(Polyvalue([(5, T1), (5, ~T1)])) == 5

    def test_simplify_passes_simple_value(self):
        assert simplify("x") == "x"

    def test_is_polyvalue(self):
        assert is_polyvalue(in_doubt(1, 2))
        assert not is_polyvalue(42)

    def test_possible_values_on_simple(self):
        assert possible_values(3) == [3]


class TestDunder:
    def test_equality(self):
        assert in_doubt(1, 2) == in_doubt(1, 2)
        assert in_doubt(1, 2) != in_doubt(1, 3)

    def test_equality_other_type(self):
        assert in_doubt(1, 2) != 42

    def test_hashable(self):
        assert len({in_doubt(1, 2), in_doubt(1, 2)}) == 1

    def test_hash_eq_contract_with_unhashable_values(self):
        # Values may be dicts (unhashable, repr-order-dependent); equal
        # polyvalues must still hash equal.
        first = Polyvalue([({"a": 1, "b": 2}, T1), ({"c": 3}, ~T1)])
        second = Polyvalue([({"b": 2, "a": 1}, T1), ({"c": 3}, ~T1)])
        assert first == second
        assert hash(first) == hash(second)

    def test_iteration_yields_pairs(self):
        values = {value for value, _ in in_doubt(1, 2)}
        assert values == {1, 2}

    def test_str_contains_values_and_conditions(self):
        rendered = str(in_doubt(130, 100))
        assert "130" in rendered and "T1" in rendered


class TestPaperScenarios:
    def test_section_3_1_in_doubt_construction(self):
        # "{<v, T>, <v', ~T>} ... if T is completed, then v is the
        # correct value, otherwise v' is correct."
        pv = Polyvalue.in_doubt("T7", new_value=42, old_value=41)
        assert pv.value_under({"T7": True}) == 42
        assert pv.value_under({"T7": False}) == 41

    def test_in_doubt_over_existing_polyvalue(self):
        # Updating an item that already has a polyvalue with another
        # in-doubt transaction nests, then flattens.
        existing = Polyvalue.in_doubt("T1", 10, 0)
        updated = Polyvalue.in_doubt("T2", 99, existing)
        assert updated.value_under({"T2": True, "T1": True}) == 99
        assert updated.value_under({"T2": False, "T1": True}) == 10
        assert updated.value_under({"T2": False, "T1": False}) == 0

    def test_reservation_rule_from_section_5(self):
        # "a new reservation can be granted so long as the largest value
        # in that polyvalue is less than the number of available seats"
        sold = Polyvalue.in_doubt("T1", 96, 95)
        capacity = 100
        assert definitely(lambda count: count < capacity, sold)
