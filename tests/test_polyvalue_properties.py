"""Property-based tests for polyvalues.

The central invariant: a polyvalue is a *function* from outcome
assignments to values, and every operation (construction/flattening,
reduction, map, combine) must commute with resolving the outcomes
first.  hypothesis builds random nested in-doubt structures and checks
the commutation on every assignment.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import Condition
from repro.core.polyvalue import (
    Polyvalue,
    combine,
    definitely,
    is_polyvalue,
    possible_values,
    possibly,
    reduce_value,
)

TXNS = ["T1", "T2", "T3"]


def nested_values(depth):
    """Random (possibly nested) in-doubt values over TXNS."""
    base = st.integers(min_value=-50, max_value=50)
    if depth == 0:
        return base
    sub = nested_values(depth - 1)
    return st.one_of(
        base,
        st.builds(
            lambda txn, new, old: Polyvalue.in_doubt(txn, new, old),
            st.sampled_from(TXNS),
            sub,
            sub,
        ),
    )


values = nested_values(3)


def all_assignments():
    for combo in itertools.product((False, True), repeat=len(TXNS)):
        yield dict(zip(TXNS, combo))


def resolve(value, assignment):
    """Ground truth: fully resolve a (possibly poly) value."""
    if is_polyvalue(value):
        return value.value_under(assignment)
    return value


@given(values)
def test_reduce_commutes_with_resolution(value):
    for assignment in all_assignments():
        reduced = reduce_value(value, assignment)
        assert not is_polyvalue(reduced) or len(reduced) == 1
        assert resolve(reduced, assignment) == resolve(value, assignment)


@given(values, st.sampled_from(TXNS), st.booleans())
def test_partial_reduce_preserves_semantics(value, txn, outcome):
    reduced = reduce_value(value, {txn: outcome})
    for assignment in all_assignments():
        if assignment[txn] != outcome:
            continue
        assert resolve(reduced, assignment) == resolve(value, assignment)


@given(values)
def test_possible_values_covers_every_resolution(value):
    possibilities = possible_values(value)
    for assignment in all_assignments():
        assert resolve(value, assignment) in possibilities


@given(values)
def test_possible_values_are_reachable(value):
    reachable = {resolve(value, a) for a in all_assignments()}
    assert set(possible_values(value)) == reachable


@given(values)
def test_conditions_complete_and_disjoint_after_flattening(value):
    if not is_polyvalue(value):
        return
    for assignment in all_assignments():
        satisfied = [
            condition
            for _, condition in value.pairs
            if condition.evaluate(assignment)
        ]
        assert len(satisfied) == 1


@given(values)
def test_no_nested_polyvalues_after_construction(value):
    if not is_polyvalue(value):
        return
    assert not any(is_polyvalue(v) for v in value.possible_values())


@given(values)
def test_no_duplicate_values_after_merging(value):
    if not is_polyvalue(value):
        return
    possibilities = value.possible_values()
    assert len(possibilities) == len(set(possibilities))


@given(values, values)
@settings(max_examples=60)
def test_combine_commutes_with_resolution(left, right):
    combined = combine(lambda a, b: a + 2 * b, left, right)
    for assignment in all_assignments():
        expected = resolve(left, assignment) + 2 * resolve(right, assignment)
        assert resolve(combined, assignment) == expected


@given(values)
def test_map_commutes_with_resolution(value):
    mapped = combine(lambda v: v * 3 + 1, value)
    for assignment in all_assignments():
        assert resolve(mapped, assignment) == resolve(value, assignment) * 3 + 1


@given(values)
def test_definitely_iff_all_possibilities(value):
    predicate = lambda v: v >= 0
    expected = all(
        predicate(resolve(value, a)) for a in all_assignments()
    )
    assert definitely(predicate, value) == expected


@given(values)
def test_possibly_iff_some_possibility(value):
    predicate = lambda v: v >= 0
    expected = any(
        predicate(resolve(value, a)) for a in all_assignments()
    )
    assert possibly(predicate, value) == expected


@given(values, st.sampled_from(TXNS), st.booleans(), st.sampled_from(TXNS), st.booleans())
@settings(max_examples=60)
def test_sequential_reduction_order_irrelevant(value, txn_a, out_a, txn_b, out_b):
    if txn_a == txn_b and out_a != out_b:
        return
    one_way = reduce_value(reduce_value(value, {txn_a: out_a}), {txn_b: out_b})
    other_way = reduce_value(reduce_value(value, {txn_b: out_b}), {txn_a: out_a})
    both = reduce_value(value, {txn_a: out_a, txn_b: out_b})
    assert one_way == other_way == both
