"""Tests for transaction pre-analysis (repro.txn.preanalysis)."""

import pytest

from repro.db.catalog import Catalog
from repro.txn.preanalysis import (
    classify,
    conflict_graph,
    conflicts,
    parallel_batches,
    profile,
    workload_mix,
)
from repro.txn.transaction import Transaction


def txn(*items, body=None):
    return Transaction(body=body or (lambda ctx: None), items=items)


@pytest.fixture
def catalog():
    return Catalog.round_robin(["a", "b", "c", "d"], ["s1", "s2"])
    # a,c -> s1 ; b,d -> s2


class TestClassify:
    def test_single_site_transaction(self, catalog):
        klass = classify(txn("a", "c"), catalog)
        assert klass.is_single_site
        assert not klass.requires_distributed_commit
        assert klass.home_site == "s1"

    def test_distributed_transaction(self, catalog):
        klass = classify(txn("a", "b"), catalog)
        assert not klass.is_single_site
        assert klass.requires_distributed_commit
        assert klass.home_site is None
        assert klass.sites == frozenset({"s1", "s2"})

    def test_single_item(self, catalog):
        assert classify(txn("d"), catalog).home_site == "s2"


class TestProfile:
    def test_read_only_detected(self):
        def body(ctx):
            ctx.output("value", ctx.read("a"))

        result = profile(txn("a", body=body), {"a": 1})
        assert result.is_read_only
        assert result.items_read == frozenset({"a"})
        assert result.outputs == ("value",)

    def test_writes_detected(self):
        def body(ctx):
            ctx.write("b", ctx.read("a") + 1)

        result = profile(txn("a", "b", body=body), {"a": 1, "b": 0})
        assert not result.is_read_only
        assert result.items_written == frozenset({"b"})

    def test_profile_is_snapshot_specific(self):
        def body(ctx):
            if ctx.read("a") > 0:
                ctx.write("b", 1)

        writing = profile(txn("a", "b", body=body), {"a": 1, "b": 0})
        idle = profile(txn("a", "b", body=body), {"a": 0, "b": 0})
        assert writing.items_written == frozenset({"b"})
        assert idle.is_read_only


class TestConflicts:
    def test_shared_item_conflicts(self):
        assert conflicts(txn("a", "b"), txn("b", "c"))

    def test_disjoint_items_do_not(self):
        assert not conflicts(txn("a"), txn("b"))

    def test_conflict_graph_symmetric(self):
        graph = conflict_graph([txn("a", "b"), txn("b"), txn("c")])
        assert graph[0] == frozenset({1})
        assert graph[1] == frozenset({0})
        assert graph[2] == frozenset()

    def test_parallel_batches_are_conflict_free(self):
        transactions = [
            txn("a", "b"),
            txn("b", "c"),
            txn("c", "d"),
            txn("d", "a"),
            txn("e"),
        ]
        batches = parallel_batches(transactions)
        for batch in batches:
            for i in batch:
                for j in batch:
                    if i != j:
                        assert not conflicts(transactions[i], transactions[j])

    def test_parallel_batches_cover_everything_once(self):
        transactions = [txn("a"), txn("a"), txn("a")]
        batches = parallel_batches(transactions)
        flattened = sorted(index for batch in batches for index in batch)
        assert flattened == [0, 1, 2]
        assert len(batches) == 3  # all conflict: one per batch

    def test_independent_transactions_single_batch(self):
        transactions = [txn("a"), txn("b"), txn("c")]
        assert parallel_batches(transactions) == [[0, 1, 2]]

    def test_batches_deterministic(self):
        transactions = [txn("a", "b"), txn("b"), txn("a"), txn("c")]
        assert parallel_batches(transactions) == parallel_batches(transactions)


class TestWorkloadMix:
    def test_mix_counts(self, catalog):
        mix = workload_mix(
            [txn("a"), txn("a", "c"), txn("a", "b"), txn("b", "c")], catalog
        )
        assert mix.total == 4
        assert mix.single_site == 2
        assert mix.distributed == 2
        assert mix.distributed_fraction == 0.5

    def test_empty_workload(self, catalog):
        mix = workload_mix([], catalog)
        assert mix.distributed_fraction == 0.0

    def test_batched_submission_avoids_lock_aborts(self):
        # End-to-end: submitting a conflicting workload batch-by-batch
        # produces zero lock-conflict aborts, versus some when submitted
        # all at once.
        from repro.txn.system import DistributedSystem

        def increment(item):
            def body(ctx):
                ctx.write(item, ctx.read(item) + 1)

            return Transaction(body=body, items=(item,))

        workload = [increment("x"), increment("x"), increment("y")]

        all_at_once = DistributedSystem.build(
            sites=2, items={"x": 0, "y": 0}, seed=1
        )
        for transaction in workload:
            all_at_once.submit(transaction)
        all_at_once.run_for(3.0)
        assert all_at_once.metrics.aborted >= 1

        batched = DistributedSystem.build(
            sites=2, items={"x": 0, "y": 0}, seed=1
        )
        for batch in parallel_batches(workload):
            for index in batch:
                batched.submit(workload[index])
            batched.run_for(2.0)
        assert batched.metrics.aborted == 0
        assert batched.read_item("x") == 2
        assert batched.read_item("y") == 1
