"""Integration tests: the failure-free commit and abort paths of the
update protocol (section 3.1, Figure 1)."""

import pytest

from repro.core.polyvalue import is_polyvalue
from repro.txn.runtime import SiteState
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TxnStatus

from tests.conftest import increment, move, run_to_decision


class TestCommitPath:
    def test_single_site_transaction_commits(self, three_site_system):
        system = three_site_system
        handle = system.submit(increment("item-0"))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-0") == 101

    def test_cross_site_transaction_commits(self, three_site_system):
        system = three_site_system
        # item-0 is at site-0, item-1 at site-1 (round robin).
        handle = system.submit(move("item-0", "item-1", 25))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-0") == 75
        assert system.read_item("item-1") == 125

    def test_all_updates_atomic_across_sites(self, three_site_system):
        system = three_site_system
        handle = system.submit(move("item-0", "item-1", 10))
        run_to_decision(system, handle)
        total = system.read_item("item-0") + system.read_item("item-1")
        assert total == 200

    def test_outputs_delivered_on_commit(self, three_site_system):
        system = three_site_system

        def body(ctx):
            ctx.output("doubled", ctx.read("item-2") * 2)

        handle = system.submit(Transaction(body=body, items=("item-2",)))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert handle.outputs == {"doubled": 200}

    def test_sequential_transactions_serialize(self, three_site_system):
        system = three_site_system
        for _ in range(5):
            handle = system.submit(increment("item-3"))
            run_to_decision(system, handle)
            assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-3") == 105

    def test_read_only_transaction_commits(self, three_site_system):
        system = three_site_system

        def body(ctx):
            ctx.output("value", ctx.read("item-4"))

        handle = system.submit(Transaction(body=body, items=("item-4",)))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert handle.outputs["value"] == 100

    def test_no_polyvalues_without_failures(self, three_site_system):
        system = three_site_system
        for index in range(6):
            system.submit(increment(f"item-{index}"))
        system.run_for(3.0)
        assert system.total_polyvalues() == 0
        assert system.metrics.committed == 6

    def test_latency_spans_protocol_rounds(self, three_site_system):
        system = three_site_system
        handle = system.submit(move("item-0", "item-1", 1))
        run_to_decision(system, handle)
        # read round-trip + stage round-trip over >= 10ms links.
        assert handle.latency >= 0.04

    def test_figure1_transitions_on_commit(self, three_site_system):
        system = three_site_system
        handle = system.submit(move("item-0", "item-1", 1))
        run_to_decision(system, handle)
        edges = system.transitions.edge_counts()
        assert edges[("idle", "begin", "compute")] == 2
        assert edges[("compute", "ready", "wait")] == 2
        assert edges[("wait", "complete", "idle")] == 2
        assert system.transitions.all_edges_valid()


class TestAbortPath:
    def test_lock_conflict_aborts_one_transaction(self, three_site_system):
        system = three_site_system
        first = system.submit(increment("item-0"))
        second = system.submit(increment("item-0"))
        system.run_for(3.0)
        statuses = sorted([first.status.value, second.status.value])
        assert statuses == ["aborted", "committed"]
        # Exactly one increment applied.
        assert system.read_item("item-0") == 101

    def test_abort_reason_mentions_conflict(self, three_site_system):
        system = three_site_system
        system.submit(increment("item-0"))
        second = system.submit(increment("item-0"))
        system.run_for(3.0)
        if second.status is TxnStatus.ABORTED:
            assert "conflict" in second.abort_reason or "refused" in second.abort_reason

    def test_failing_body_aborts(self, three_site_system):
        system = three_site_system

        def body(ctx):
            ctx.read("item-not-declared")

        handle = system.submit(Transaction(body=body, items=("item-0",)))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.ABORTED
        assert "body failed" in handle.abort_reason

    def test_aborted_transaction_leaves_no_trace(self, three_site_system):
        system = three_site_system
        system.submit(increment("item-0"))
        system.submit(increment("item-0"))
        system.run_for(3.0)
        assert system.total_polyvalues() == 0
        assert system.outcome_bookkeeping_size() == 0
        # No locks leaked.
        for site in system.sites.values():
            assert site.runtime.locks.locked_items() == frozenset()

    def test_figure1_abort_edge_recorded(self, three_site_system):
        system = three_site_system
        system.submit(increment("item-0"))
        system.submit(increment("item-0"))
        system.run_for(3.0)
        edges = system.transitions.edge_counts()
        assert edges.get(("compute", "abort", "idle"), 0) >= 1
        assert system.transitions.all_edges_valid()

    def test_retry_after_abort_succeeds(self, three_site_system):
        system = three_site_system
        first = system.submit(increment("item-0"))
        second = system.submit(increment("item-0"))
        system.run_for(3.0)
        loser = first if first.status is TxnStatus.ABORTED else second
        retry = system.submit(loser.transaction)
        run_to_decision(system, retry)
        assert retry.status is TxnStatus.COMMITTED
        assert system.read_item("item-0") == 102


class TestConcurrency:
    def test_disjoint_transactions_run_concurrently(self, three_site_system):
        system = three_site_system
        handles = [
            system.submit(increment(f"item-{index}")) for index in range(6)
        ]
        system.run_for(3.0)
        assert all(h.status is TxnStatus.COMMITTED for h in handles)

    def test_many_rounds_consistent_totals(self, three_site_system):
        system = three_site_system
        committed_moves = 0
        for round_index in range(10):
            handle = system.submit(
                move(f"item-{round_index % 3}", f"item-{(round_index + 1) % 3}", 5)
            )
            run_to_decision(system, handle)
            if handle.status is TxnStatus.COMMITTED:
                committed_moves += 1
        total = sum(system.read_item(f"item-{index}") for index in range(3))
        assert total == 300
        assert committed_moves == 10
