"""Differential tests across the four bake-off commit protocols.

Two contracts (the ISSUE-7 satellite):

* **Failure-free equivalence** — on a failure-free run of the same
  seeded workload, polyvalue, blocking 2PC, Paxos Commit and
  path-sensitive commit must all reach the identical final item
  values.  The protocols differ in *how* they decide, never in *what*
  a committed serial history computes.
* **Availability under coordinator crash** — with the coordinator
  crashed inside the wait phase (the paper's Figure-1 in-doubt
  window), blocking 2PC stalls the touched items while polyvalues keep
  them available, and Paxos Commit goes one further: the *original*
  transaction itself commits through acceptor failover while the
  coordinator is still down.  Parametrized over crash instants
  bracketing the wait phase.
"""

import pytest

from repro.txn.baselines import (
    blocking_system,
    paxos_commit_system,
    path_sensitive_system,
    polyvalue_system,
)
from repro.txn.transaction import Transaction, TxnStatus

from tests.conftest import increment, move, run_to_decision

ITEMS = {f"item-{index}": 100 for index in range(6)}

BUILDERS = {
    "polyvalue": polyvalue_system,
    "blocking": blocking_system,
    "paxos": paxos_commit_system,
    "pathsensitive": path_sensitive_system,
}


def copy(source, target):
    """A dependent copy — order-sensitive, so path-sensitive commit
    must route it through the coordinated fallback."""

    def body(ctx):
        ctx.write(target, ctx.read(source))

    return Transaction(
        body=body, items=(source, target), label=f"copy:{source}->{target}"
    )


def _run_workload(system):
    """The shared seeded workload: transfers, increments and a copy,
    sequentially spaced so every protocol sees the same serial order."""
    handles = []
    for transaction in (
        move("item-0", "item-1", 30),
        increment("item-2", 7),
        move("item-1", "item-2", 10),
        copy("item-2", "item-3"),
        move("item-4", "item-5", 20),
        increment("item-1", 2),
    ):
        handles.append(system.submit(transaction))
        system.run_for(0.3)
    assert system.run_to_quiescence(max_time=system.sim.now + 30.0)
    return handles


class TestFailureFreeEquivalence:
    def test_identical_final_values_across_protocols(self):
        finals = {}
        for name, builder in BUILDERS.items():
            system = builder(sites=3, items=dict(ITEMS), seed=77)
            handles = _run_workload(system)
            assert all(
                handle.status is TxnStatus.COMMITTED for handle in handles
            ), f"{name}: not every transaction committed failure-free"
            finals[name] = system.database_state()
        reference = finals["polyvalue"]
        for name, state in finals.items():
            assert state == reference, (
                f"{name} diverged from polyvalue: {state} != {reference}"
            )

    def test_identical_outputs_across_protocols(self):
        def observe(ctx):
            ctx.output("sum", ctx.read("item-0") + ctx.read("item-1"))

        probe = Transaction(
            body=observe, items=("item-0", "item-1"), label="observe"
        )
        outputs = {}
        for name, builder in BUILDERS.items():
            system = builder(sites=3, items=dict(ITEMS), seed=5)
            system.submit(move("item-0", "item-1", 30))
            system.run_for(0.3)
            handle = system.submit(probe)
            run_to_decision(system, handle)
            assert handle.status is TxnStatus.COMMITTED
            outputs[name] = dict(handle.outputs)
        reference = outputs["polyvalue"]
        for name, seen in outputs.items():
            assert seen == reference


#: Crash instants inside the first transfer's wait phase at default
#: timings (reads ~10-25 ms, staging ~30-45 ms, decision ~53-55 ms):
#: both participants have staged and hold write locks, the coordinator
#: has not yet decided.  The paper's Figure-1 in-doubt window — by
#: 0.055 the decision message is already out and every protocol
#: trivially commits.
WAIT_PHASE_CRASH_POINTS = (0.045, 0.050)


def _crash_coordinator_in_window(builder, crash_at):
    """Transfer item-1 -> item-2 (sites 1 and 2) coordinated by the
    *non-participant* site-0, which crashes at *crash_at*.

    A non-participant coordinator keeps the participants' own votes out
    of the crash's blast radius — the cleanest Figure-1 shape: the only
    thing lost is the decider."""
    system = builder(sites=3, items=dict(ITEMS), seed=9)
    handle = system.submit(move("item-1", "item-2", 25), at="site-0")
    system.run_for(crash_at)
    system.crash_site("site-0")
    system.run_for(2.0)
    return system, handle


class TestCoordinatorCrashAvailability:
    @pytest.mark.parametrize("crash_at", WAIT_PHASE_CRASH_POINTS)
    def test_blocking_stalls_the_item(self, crash_at):
        system, _ = _crash_coordinator_in_window(blocking_system, crash_at)
        probe = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, probe)
        assert probe.status is TxnStatus.ABORTED

    @pytest.mark.parametrize("crash_at", WAIT_PHASE_CRASH_POINTS)
    def test_polyvalue_keeps_the_item_available(self, crash_at):
        system, _ = _crash_coordinator_in_window(polyvalue_system, crash_at)
        probe = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, probe)
        assert probe.status is TxnStatus.COMMITTED

    @pytest.mark.parametrize("crash_at", WAIT_PHASE_CRASH_POINTS)
    def test_paxos_commits_the_original_transaction(self, crash_at):
        system, handle = _crash_coordinator_in_window(
            paxos_commit_system, crash_at
        )
        # Non-blocking termination: the acceptors' failover decides the
        # staged transaction while the coordinator is still down.
        assert system.down_sites() == ["site-0"]
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-1") == 75
        assert system.read_item("item-2") == 125

    @pytest.mark.parametrize("crash_at", WAIT_PHASE_CRASH_POINTS)
    def test_paxos_keeps_the_item_available(self, crash_at):
        system, _ = _crash_coordinator_in_window(
            paxos_commit_system, crash_at
        )
        probe = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, probe)
        assert probe.status is TxnStatus.COMMITTED

    def test_recovery_converges_every_protocol(self):
        for name, builder in BUILDERS.items():
            system, handle = _crash_coordinator_in_window(builder, 0.050)
            system.recover_site("site-0")
            assert system.settle(max_time=system.sim.now + 120.0), name
            assert handle.status is not TxnStatus.PENDING, name
            assert system.total_polyvalues() == 0, name
