"""Explorer coverage for the bake-off protocols.

The explorer must walk Paxos Commit and path-sensitive systems exactly
as it walks the default polyvalue system: seeded walks find zero
violations, schedules round-trip through the artifact format with
their protocol field intact, and a replayed schedule reproduces the
original run bit-for-bit.
"""

import dataclasses

import pytest

from repro.check.explorer import (
    Schedule,
    explore,
    load_artifact,
    random_walk,
    run_schedule,
    schedule_config,
)
from repro.net.failures import FailureAction
from repro.parallel.artifacts import write_violation_artifact

PROTOCOLS = ("paxos", "pathsensitive")


class TestScheduleProtocolField:
    def test_round_trips_through_dict(self):
        schedule = Schedule(
            scenario="transfers",
            seed=3,
            actions=(
                FailureAction(at=0.4, kind="crash", targets=("site-1",)),
                FailureAction(at=1.2, kind="recover", targets=("site-1",)),
            ),
            protocol="paxos",
            label="round-trip",
        )
        restored = Schedule.from_dict(schedule.to_dict())
        assert restored == schedule
        assert restored.fingerprint() == schedule.fingerprint()

    def test_protocol_changes_fingerprint(self):
        base = random_walk("pair", 11, steps=4)
        armed = dataclasses.replace(base, protocol="paxos")
        assert armed.fingerprint() != base.fingerprint()

    def test_unset_protocol_keeps_default_config_path(self):
        # Historical fingerprints depend on plain schedules resolving
        # to "no config override" — never to an explicit polyvalue one.
        assert schedule_config(random_walk("pair", 1, steps=3)) is None

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_schedule_config_selects_protocol(self, protocol):
        schedule = dataclasses.replace(
            random_walk("pair", 1, steps=3), protocol=protocol
        )
        config = schedule_config(schedule)
        assert config is not None
        assert config.protocol_kind == protocol


class TestSeededWalks:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_small_budget_walks_are_clean(self, protocol):
        report = explore(
            scenarios=("pair", "transfers"),
            trials=2,
            steps=6,
            include_enumeration=False,
            protocol=protocol,
        )
        assert report.failed_trials == []
        assert report.schedules_run == 4
        assert report.ok, [str(v) for v in report.violations]

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_walks_are_deterministic(self, protocol):
        schedule = dataclasses.replace(
            random_walk("transfers", 21, steps=6), protocol=protocol
        )
        first = run_schedule(schedule)
        second = run_schedule(schedule)
        assert first.ok and second.ok
        assert first.converged and second.converged
        assert first.stats == second.stats
        assert first.events_processed == second.events_processed


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_write_load_replay(self, protocol, tmp_path):
        schedule = dataclasses.replace(
            random_walk("transfers", 33, steps=6), protocol=protocol
        )
        path = write_violation_artifact(schedule, [], str(tmp_path))
        restored = load_artifact(path)
        assert restored.protocol == protocol
        assert restored == schedule
        direct = run_schedule(schedule)
        replayed = run_schedule(restored)
        assert replayed.ok == direct.ok
        assert replayed.stats == direct.stats
