"""Integration tests: failures in the commit window — the heart of the paper.

Scenario anatomy: a two-site transfer's coordinator is crashed at a
chosen instant.  Timing (with 10-15 ms links and the default 0.4/0.5 s
timeouts): reads complete by ~30 ms, stage requests land by ~45 ms,
ready messages by ~60 ms.  Crashing the coordinator at 50 ms therefore
catches the remote participant *in its wait phase* — the paper's
in-doubt window — and it must install polyvalues and release its locks.
"""

import pytest

from repro.core.polyvalue import is_polyvalue
from repro.txn.config import ProtocolConfig
from repro.txn.runtime import SiteState
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TxnStatus

from tests.conftest import increment, move, run_to_decision


def fresh_system(seed=42, **kwargs):
    items = {f"item-{index}": 100 for index in range(6)}
    return DistributedSystem.build(sites=3, items=items, seed=seed, **kwargs)


def submit_transfer_and_crash_coordinator(system, crash_at=0.05):
    """Submit item-0 -> item-1 transfer (coordinator site-0), crash
    site-0 inside the commit window."""
    handle = system.submit(move("item-0", "item-1", 30))
    system.run_for(crash_at)
    system.crash_site("site-0")
    return handle


class TestInDoubtWindow:
    def test_wait_timeout_installs_polyvalue(self):
        system = fresh_system()
        submit_transfer_and_crash_coordinator(system)
        system.run_for(2.0)
        value = system.read_item("item-1")
        assert is_polyvalue(value)
        assert set(value.possible_values()) == {130, 100}

    def test_polyvalue_condition_names_the_transaction(self):
        system = fresh_system()
        handle = submit_transfer_and_crash_coordinator(system)
        system.run_for(2.0)
        value = system.read_item("item-1")
        assert value.depends_on() == frozenset({handle.txn})

    def test_locks_released_after_polyvalue_install(self):
        system = fresh_system()
        submit_transfer_and_crash_coordinator(system)
        system.run_for(2.0)
        site1 = system.sites["site-1"]
        assert site1.runtime.locks.locked_items() == frozenset()

    def test_item_available_for_new_transactions(self):
        # The availability claim: the polyvalued item can be read and
        # written immediately, long before the failure recovers.
        system = fresh_system()
        submit_transfer_and_crash_coordinator(system)
        system.run_for(2.0)
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        value = system.read_item("item-1")
        assert set(value.possible_values()) == {131, 101}

    def test_polytransaction_flag_set(self):
        system = fresh_system()
        submit_transfer_and_crash_coordinator(system)
        system.run_for(2.0)
        handle = system.submit(increment("item-1"), at="site-1")
        run_to_decision(system, handle)
        assert handle.was_polytransaction
        assert system.metrics.polytransactions >= 1

    def test_wait_timeout_transition_recorded(self):
        system = fresh_system()
        submit_transfer_and_crash_coordinator(system)
        system.run_for(2.0)
        edges = system.transitions.edge_counts()
        assert edges.get(("wait", "wait-timeout", "idle"), 0) >= 1
        assert system.transitions.all_edges_valid()

    def test_presumed_abort_resolution_after_recovery(self):
        system = fresh_system()
        handle = submit_transfer_and_crash_coordinator(system)
        system.run_for(2.0)
        system.recover_site("site-0")
        system.run_for(5.0)
        # Coordinator never decided -> presumed abort -> old values.
        assert handle.status is TxnStatus.ABORTED
        assert system.read_item("item-0") == 100
        assert system.read_item("item-1") == 100
        assert system.total_polyvalues() == 0

    def test_commit_resolution_when_decision_was_logged(self):
        # Crash the coordinator after it decided (ready msgs by ~60ms,
        # decision ~60ms) but drop its complete message to site-1 by
        # crashing at the decision instant +epsilon... Instead, crash
        # the *participant* link via partition so complete is lost.
        system = fresh_system()
        handle = system.submit(move("item-0", "item-1", 30))
        system.run_for(0.055)  # readies in flight; decision imminent
        system.network.partition("site-0", "site-1")
        system.run_for(2.0)
        if handle.status is TxnStatus.COMMITTED:
            # site-1 never saw complete -> polyvalue; after healing the
            # outcome query must resolve it to the NEW value.
            system.network.heal_all()
            system.run_for(5.0)
            assert system.read_item("item-1") == 130
            assert system.read_item("item-0") == 70
        else:
            # The partition beat the last ready; abort path.
            system.network.heal_all()
            system.run_for(5.0)
            assert system.read_item("item-1") == 100
        assert system.total_polyvalues() == 0

    def test_bookkeeping_garbage_collected(self):
        system = fresh_system()
        submit_transfer_and_crash_coordinator(system)
        system.run_for(2.0)
        assert system.outcome_bookkeeping_size() >= 1
        system.recover_site("site-0")
        system.run_for(5.0)
        assert system.outcome_bookkeeping_size() == 0

    def test_participant_crash_installs_polyvalues_on_recovery(self):
        # Crash the *participant* while it is in its wait phase; its
        # durable staged log must produce polyvalues at recovery.
        system = fresh_system()
        handle = system.submit(move("item-0", "item-1", 30))
        system.run_for(0.05)
        system.crash_site("site-1")
        system.run_for(1.0)
        system.recover_site("site-1")
        system.run_for(0.01)
        value = system.read_item("item-1")
        # Either already resolved via query (fast) or still poly.
        if is_polyvalue(value):
            assert set(value.possible_values()) == {130, 100}
        system.run_for(5.0)
        assert not is_polyvalue(system.read_item("item-1"))
        assert system.total_polyvalues() == 0


class TestUncertaintyPropagation:
    def make_uncertain_item1(self, system):
        handle = submit_transfer_and_crash_coordinator(system)
        system.run_for(2.0)
        assert is_polyvalue(system.read_item("item-1"))
        return handle

    def test_dependent_write_propagates_uncertainty(self):
        system = fresh_system()
        self.make_uncertain_item1(system)

        def copy_into_4(ctx):
            ctx.write("item-4", ctx.read("item-1"))

        handle = system.submit(
            Transaction(body=copy_into_4, items=("item-1", "item-4")),
            at="site-1",
        )
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        copied = system.read_item("item-4")
        assert is_polyvalue(copied)
        assert set(copied.possible_values()) == {130, 100}

    def test_propagated_polyvalue_resolved_after_recovery(self):
        system = fresh_system()
        self.make_uncertain_item1(system)

        def copy_into_4(ctx):
            ctx.write("item-4", ctx.read("item-1"))

        handle = system.submit(
            Transaction(body=copy_into_4, items=("item-1", "item-4")),
            at="site-1",
        )
        run_to_decision(system, handle)
        system.recover_site("site-0")
        system.run_for(6.0)
        # Presumed abort: both original and copy resolve to old value.
        assert system.read_item("item-1") == 100
        assert system.read_item("item-4") == 100
        assert system.total_polyvalues() == 0
        assert system.outcome_bookkeeping_size() == 0

    def test_value_independent_computation_stays_simple(self):
        system = fresh_system()
        self.make_uncertain_item1(system)

        def threshold(ctx):
            ctx.write("item-4", ctx.read("item-1") >= 50)

        handle = system.submit(
            Transaction(body=threshold, items=("item-1", "item-4")),
            at="site-1",
        )
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-4") is True  # simple, not poly

    def test_overwrite_with_simple_value_removes_polyvalue(self):
        system = fresh_system()
        self.make_uncertain_item1(system)

        def overwrite(ctx):
            ctx.write("item-1", 7)

        handle = system.submit(
            Transaction(body=overwrite, items=("item-1",)), at="site-1"
        )
        run_to_decision(system, handle)
        assert system.read_item("item-1") == 7
        assert system.total_polyvalues() == 0

    def test_two_independent_failures_compound(self):
        system = fresh_system()
        first = self.make_uncertain_item1(system)
        # Second in-doubt transfer: item-2 (site-2) -> item-1, with
        # coordinator site-2 crashed in the window.
        second = system.submit(move("item-2", "item-1", 7), at="site-2")
        system.run_for(0.05)
        system.crash_site("site-2")
        system.run_for(2.0)
        value = system.read_item("item-1")
        assert is_polyvalue(value)
        assert value.depends_on() == frozenset({first.txn, second.txn})
        assert len(value.possible_values()) == 4  # 2x2 combinations

    def test_compound_uncertainty_resolves_stepwise(self):
        system = fresh_system()
        self.make_uncertain_item1(system)
        system.submit(move("item-2", "item-1", 7), at="site-2")
        system.run_for(0.05)
        system.crash_site("site-2")
        system.run_for(2.0)
        system.recover_site("site-0")
        system.run_for(6.0)
        value = system.read_item("item-1")
        # First failure resolved (abort): half the uncertainty gone.
        if is_polyvalue(value):
            assert len(value.possible_values()) == 2
        system.recover_site("site-2")
        system.run_for(6.0)
        assert not is_polyvalue(system.read_item("item-1"))
        assert system.total_polyvalues() == 0


class TestComputePhaseFailures:
    def test_crash_before_stage_discards_cleanly(self):
        system = fresh_system()
        handle = system.submit(move("item-0", "item-1", 30))
        system.run_for(0.015)  # reads in flight, nothing staged yet
        system.crash_site("site-0")
        system.run_for(3.0)
        # Participant compute-timeout: discard, no polyvalues.
        assert system.total_polyvalues() == 0
        assert handle.status is TxnStatus.ABORTED
        edges = system.transitions.edge_counts()
        assert edges.get(("compute", "compute-timeout", "idle"), 0) >= 1

    def test_partition_during_read_phase_aborts(self):
        system = fresh_system()
        system.network.partition("site-0", "site-1")
        handle = system.submit(move("item-0", "item-1", 30))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.ABORTED
        assert "timeout" in handle.abort_reason
        assert system.total_polyvalues() == 0

    def test_unrelated_sites_unaffected_by_crash(self):
        system = fresh_system()
        system.crash_site("site-0")
        # Transaction purely between site-1 and site-2.
        handle = system.submit(move("item-1", "item-2", 10), at="site-1")
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("item-1") == 90
        assert system.read_item("item-2") == 110


class TestMessageLoss:
    def test_protocol_survives_light_loss(self):
        system = fresh_system(loss_probability=0.02)
        handles = []
        for index in range(20):
            handles.append(system.submit(increment(f"item-{index % 6}")))
            system.run_for(0.5)
        system.run_for(10.0)
        decided = [h for h in handles if h.status is not TxnStatus.PENDING]
        assert len(decided) == len(handles)
        # Any polyvalues created by lost complete messages eventually
        # resolve through the outcome-query loop.
        system.run_for(20.0)
        assert system.total_polyvalues() == 0


class TestCrashInEveryFigure1State:
    """Crash a participant in each Figure-1 state; the oracles must hold.

    Timing (10-15 ms links, seed 42): the remote participant of a
    two-site transfer is IDLE until the read request lands (~12 ms),
    COMPUTEs until it stages and votes ready (~45 ms), then WAITs for
    the outcome (~60 ms) and returns to IDLE.  Each case pins the crash
    instant inside one state, and after recovery and settling the full
    oracle catalogue must pass — whatever state the failure interrupted,
    the protocol must restore every global invariant.
    """

    CASES = [
        ("idle", 0.002, SiteState.IDLE),
        ("compute", 0.030, SiteState.COMPUTE),
        ("wait", 0.050, SiteState.WAIT),
        ("decided", 0.500, SiteState.IDLE),
    ]

    @pytest.mark.parametrize(
        "label,crash_at,expected_state",
        CASES,
        ids=[case[0] for case in CASES],
    )
    def test_participant_crash_preserves_invariants(
        self, label, crash_at, expected_state
    ):
        from repro.check import CheckContext, check_converged, check_quiescent, failed

        system = fresh_system()
        handle = system.submit(move("item-0", "item-1", 30))
        system.run_until(crash_at)
        participant = system.sites["site-1"].participant
        assert participant.state_of(handle.txn) is expected_state, (
            f"timing drifted: expected the participant in "
            f"{expected_state.value} at t={crash_at}"
        )
        system.crash_site("site-1")
        # While the site is down, every quiescent-point invariant must
        # already hold for the survivors.
        assert system.run_to_quiescence(max_time=5.0)
        ctx = CheckContext(system=system)
        assert failed(check_quiescent(ctx)) == []
        system.recover_site("site-1")
        assert system.settle(max_time=system.sim.now + 60.0, step=0.5)
        system.run_to_quiescence(max_time=system.sim.now + 5.0)
        assert failed(check_converged(ctx)) == []
        assert handle.status is not TxnStatus.PENDING

    @pytest.mark.parametrize(
        "label,crash_at,expected_state",
        CASES,
        ids=[case[0] for case in CASES],
    )
    def test_coordinator_crash_preserves_invariants(
        self, label, crash_at, expected_state
    ):
        # The dual: crash the *coordinator* at the same instants (the
        # participant's state still identifies the protocol phase).
        from repro.check import CheckContext, check_converged, check_quiescent, failed

        system = fresh_system()
        handle = system.submit(move("item-0", "item-1", 30))
        system.run_until(crash_at)
        assert (
            system.sites["site-1"].participant.state_of(handle.txn)
            is expected_state
        )
        system.crash_site("site-0")
        assert system.run_to_quiescence(max_time=5.0)
        ctx = CheckContext(system=system)
        assert failed(check_quiescent(ctx)) == []
        system.recover_site("site-0")
        assert system.settle(max_time=system.sim.now + 60.0, step=0.5)
        system.run_to_quiescence(max_time=system.sim.now + 5.0)
        assert failed(check_converged(ctx)) == []
