"""Mutation smoke for the bake-off protocols.

The protocol fault catalogue injects one subtle bug per protocol —
a Paxos acceptor that acks without persisting its vote, a
path-sensitive pre-analysis that misclassifies one order-sensitive
path, a dropped remote delta — and the oracle catalogue must convict
every one of them while staying silent on the unmutated baseline.
"""

import pytest

from repro.check.mutation import (
    PROTOCOL_FAULTS,
    protocol_smoke_schedules,
    run_protocol_mutation_smoke,
)


class TestCatalogue:
    def test_every_fault_is_namespaced(self):
        assert set(PROTOCOL_FAULTS) == {
            "paxos:acceptor-no-persist",
            "path:misclassify-one",
            "path:drop-remote-apply",
        }

    @pytest.mark.parametrize("fault", sorted(PROTOCOL_FAULTS))
    def test_smoke_schedules_carry_the_protocol(self, fault):
        schedules = protocol_smoke_schedules(fault)
        assert schedules
        expected = "paxos" if fault.startswith("paxos:") else "pathsensitive"
        assert all(s.protocol == expected for s in schedules)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            protocol_smoke_schedules("paxos:no-such-fault")
        with pytest.raises(ValueError):
            run_protocol_mutation_smoke(faults=("bogus",))


class TestSmoke:
    @pytest.fixture(scope="class")
    def report(self):
        return run_protocol_mutation_smoke(seed=0)

    def test_baseline_clean(self, report):
        assert report.baseline_ok, [
            str(v) for v in report.baseline_violations
        ]

    def test_every_fault_caught(self, report):
        missed = [o.fault for o in report.outcomes if not o.caught]
        assert not missed, f"oracles missed: {missed}"
        assert report.ok

    def test_paxos_mutant_convicted_by_decision_oracles(self, report):
        outcome = next(
            o for o in report.outcomes
            if o.fault == "paxos:acceptor-no-persist"
        )
        assert "decision-consistency" in outcome.oracles_triggered

    @pytest.mark.parametrize(
        "fault", ["path:misclassify-one", "path:drop-remote-apply"]
    )
    def test_path_mutants_convicted_by_path_effects(self, report, fault):
        outcome = next(o for o in report.outcomes if o.fault == fault)
        assert "path-effects" in outcome.oracles_triggered
