"""Unit tests for the seeded random source (repro.sim.rand)."""

import pytest

from repro.core.errors import SimulationError
from repro.sim.rand import Rng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = Rng(42)
        b = Rng(42)
        assert [a.uniform(0, 1) for _ in range(10)] == [
            b.uniform(0, 1) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        assert Rng(1).uniform(0, 1) != Rng(2).uniform(0, 1)

    def test_fork_is_deterministic(self):
        a = Rng(42).fork("network")
        b = Rng(42).fork("network")
        assert a.uniform(0, 1) == b.uniform(0, 1)

    def test_fork_streams_are_independent(self):
        root = Rng(42)
        network = root.fork("network")
        failures = root.fork("failures")
        assert network.uniform(0, 1) != failures.uniform(0, 1)

    def test_seed_property(self):
        assert Rng(7).seed == 7


class TestDistributions:
    def test_exponential_mean(self):
        rng = Rng(0)
        draws = [rng.exponential(10.0) for _ in range(20000)]
        mean = sum(draws) / len(draws)
        assert 9.0 < mean < 11.0

    def test_exponential_positive(self):
        rng = Rng(0)
        assert all(rng.exponential(1.0) > 0 for _ in range(100))

    def test_exponential_requires_positive_mean(self):
        with pytest.raises(SimulationError):
            Rng(0).exponential(0.0)

    def test_bernoulli_probability(self):
        rng = Rng(0)
        hits = sum(rng.bernoulli(0.3) for _ in range(20000))
        assert 0.27 < hits / 20000 < 0.33

    def test_bernoulli_extremes(self):
        rng = Rng(0)
        assert not any(rng.bernoulli(0.0) for _ in range(100))
        assert all(rng.bernoulli(1.0) for _ in range(100))

    def test_bernoulli_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            Rng(0).bernoulli(1.5)

    def test_randint_bounds_inclusive(self):
        rng = Rng(0)
        draws = {rng.randint(0, 3) for _ in range(200)}
        assert draws == {0, 1, 2, 3}

    def test_choice_from_options(self):
        rng = Rng(0)
        assert rng.choice(["x"]) == "x"
        assert rng.choice(["a", "b"]) in ("a", "b")

    def test_choice_empty_raises(self):
        with pytest.raises(SimulationError):
            Rng(0).choice([])

    def test_sample_distinct(self):
        rng = Rng(0)
        picked = rng.sample(list(range(10)), 5)
        assert len(picked) == len(set(picked)) == 5

    def test_sample_count_capped_at_population(self):
        rng = Rng(0)
        picked = rng.sample([1, 2, 3], 10)
        assert sorted(picked) == [1, 2, 3]

    def test_shuffled_preserves_elements(self):
        rng = Rng(0)
        original = list(range(20))
        shuffled = rng.shuffled(original)
        assert sorted(shuffled) == original
        assert original == list(range(20))  # input untouched

    def test_zipf_like_uniform_when_no_skew(self):
        rng = Rng(0)
        draws = {rng.zipf_like(5, 0.0) for _ in range(500)}
        assert draws == {0, 1, 2, 3, 4}

    def test_zipf_like_skews_low_indices(self):
        rng = Rng(0)
        draws = [rng.zipf_like(100, 1.0) for _ in range(5000)]
        low = sum(1 for d in draws if d < 10)
        assert low > 1000  # far above the uniform expectation of 500

    def test_zipf_like_requires_positive_size(self):
        with pytest.raises(SimulationError):
            Rng(0).zipf_like(0, 1.0)
