"""Tests for replication support (repro.db.replication)."""

import pytest

from repro.core.errors import ReproError, UnknownItemError
from repro.core.polyvalue import is_polyvalue
from repro.db.replication import (
    ReplicationScheme,
    all_replicas_consistent,
    read_all_replicas,
    replica_item,
    replicas_mutually_consistent,
    replicated_read,
    replicated_update,
    split_replica,
)
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus

from tests.conftest import run_to_decision

SITES = ("site-0", "site-1", "site-2")


def replicated_system(values=None, seed=5):
    scheme = ReplicationScheme.full(["x", "y"], SITES)
    initial = scheme.initial_values(values or {"x": 10, "y": 20})
    system = DistributedSystem(
        catalog=scheme.catalog(),
        initial_values=initial,
        seed=seed,
        jitter=0.0,
    )
    return system, scheme


class TestNaming:
    def test_replica_item_roundtrip(self):
        item = replica_item("x", "site-1")
        assert item == "x::site-1"
        assert split_replica(item) == ("x", "site-1")

    def test_separator_in_logical_id_rejected(self):
        with pytest.raises(ReproError):
            replica_item("a::b", "site-1")

    def test_split_rejects_plain_item(self):
        with pytest.raises(ReproError):
            split_replica("plain")


class TestScheme:
    def test_full_replication(self):
        scheme = ReplicationScheme.full(["x"], SITES)
        assert scheme.sites_of("x") == SITES
        assert scheme.replicas_of("x") == [
            "x::site-0",
            "x::site-1",
            "x::site-2",
        ]

    def test_explicit_placement(self):
        scheme = ReplicationScheme.explicit({"x": ["site-0", "site-2"]})
        assert scheme.sites_of("x") == ("site-0", "site-2")

    def test_unknown_logical_item(self):
        scheme = ReplicationScheme.full(["x"], SITES)
        with pytest.raises(UnknownItemError):
            scheme.sites_of("zzz")

    def test_empty_replica_list_rejected(self):
        with pytest.raises(ReproError):
            ReplicationScheme.explicit({"x": []})

    def test_duplicate_site_rejected(self):
        with pytest.raises(ReproError):
            ReplicationScheme.explicit({"x": ["site-0", "site-0"]})

    def test_catalog_places_each_replica_at_home(self):
        scheme = ReplicationScheme.full(["x"], SITES)
        catalog = scheme.catalog()
        assert catalog.site_of("x::site-1") == "site-1"
        assert len(catalog) == 3

    def test_initial_values_replicated(self):
        scheme = ReplicationScheme.full(["x"], SITES)
        physical = scheme.initial_values({"x": 7})
        assert set(physical.values()) == {7}
        assert len(physical) == 3


class TestWriteAll:
    def test_update_reaches_every_replica(self):
        system, scheme = replicated_system()
        handle = system.submit(
            replicated_update(scheme, "x", lambda v: v + 5)
        )
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        for item in scheme.replicas_of("x"):
            assert system.read_item(item) == 15

    def test_read_any_from_each_site(self):
        system, scheme = replicated_system()
        for site in SITES:
            handle = system.submit(
                replicated_read(scheme, "x", at_site=site), at=site
            )
            run_to_decision(system, handle)
            assert handle.outputs["value"] == 10

    def test_read_at_non_replica_site_rejected(self):
        scheme = ReplicationScheme.explicit({"x": ["site-0"]})
        with pytest.raises(ReproError):
            replicated_read(scheme, "x", at_site="site-1")

    def test_read_survives_other_replica_failure(self):
        system, scheme = replicated_system()
        system.crash_site("site-0")
        handle = system.submit(
            replicated_read(scheme, "x", at_site="site-1"), at="site-1"
        )
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert handle.outputs["value"] == 10

    def test_read_all_agreement(self):
        system, scheme = replicated_system()
        handle = system.submit(read_all_replicas(scheme, "y"))
        run_to_decision(system, handle)
        assert handle.outputs["agree"] is True
        assert set(handle.outputs["values"].values()) == {20}


class TestInterruptedReplicatedUpdate:
    def interrupt_update(self, system, scheme):
        """Write-all update whose coordinator (site-0) crashes in the window."""
        system.submit(replicated_update(scheme, "x", lambda v: v + 5))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.5)

    def test_surviving_replicas_hold_polyvalues(self):
        system, scheme = replicated_system()
        self.interrupt_update(system, scheme)
        for site in ("site-1", "site-2"):
            value = system.read_item(replica_item("x", site))
            assert is_polyvalue(value)
            assert set(value.possible_values()) == {15, 10}

    def test_replicas_conditionally_consistent_during_doubt(self):
        system, scheme = replicated_system()
        self.interrupt_update(system, scheme)
        # Exclude the crashed site's replica (unreadable in reality; its
        # store still shows the stale 10 to the observer).
        sub_scheme = ReplicationScheme.explicit({"x": ["site-1", "site-2"]})
        assert replicas_mutually_consistent(
            system.database_state(), sub_scheme, "x"
        )

    def test_read_any_still_available_during_doubt(self):
        system, scheme = replicated_system()
        self.interrupt_update(system, scheme)
        handle = system.submit(
            replicated_read(scheme, "x", at_site="site-1"), at="site-1"
        )
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert is_polyvalue(handle.outputs["value"])

    def test_recovery_restores_exact_agreement(self):
        system, scheme = replicated_system()
        self.interrupt_update(system, scheme)
        system.recover_site("site-0")
        system.run_for(6.0)
        state = system.database_state()
        # Presumed abort: every replica back to 10, exactly.
        for item in scheme.replicas_of("x"):
            assert state[item] == 10
        assert all_replicas_consistent(state, scheme)
        assert system.total_polyvalues() == 0

    def test_committed_update_consistent_after_partition_heal(self):
        system, scheme = replicated_system()
        system.submit(replicated_update(scheme, "x", lambda v: v + 5))
        system.run_for(0.046)  # readies in flight
        system.network.partition("site-0", "site-1")
        system.run_for(2.0)
        system.network.heal_all()
        system.run_for(6.0)
        state = system.database_state()
        values = {state[item] for item in scheme.replicas_of("x")}
        assert len(values) == 1  # all replicas converged to one value
        assert all_replicas_consistent(state, scheme)


class TestConsistencyChecker:
    def test_detects_divergent_replicas(self):
        scheme = ReplicationScheme.full(["x"], ("site-0", "site-1"))
        state = {"x::site-0": 1, "x::site-1": 2}
        assert not replicas_mutually_consistent(state, scheme, "x")

    def test_accepts_identical_polyvalues(self):
        from repro.core.polyvalue import Polyvalue

        scheme = ReplicationScheme.full(["x"], ("site-0", "site-1"))
        pv = Polyvalue.in_doubt("T1@s", 15, 10)
        state = {"x::site-0": pv, "x::site-1": pv}
        assert replicas_mutually_consistent(state, scheme, "x")

    def test_rejects_conditionally_divergent_polyvalues(self):
        from repro.core.polyvalue import Polyvalue

        scheme = ReplicationScheme.full(["x"], ("site-0", "site-1"))
        state = {
            "x::site-0": Polyvalue.in_doubt("T1@s", 15, 10),
            "x::site-1": Polyvalue.in_doubt("T1@s", 16, 10),
        }
        assert not replicas_mutually_consistent(state, scheme, "x")

    def test_single_replica_trivially_consistent(self):
        scheme = ReplicationScheme.explicit({"x": ["site-0"]})
        assert replicas_mutually_consistent({"x::site-0": 5}, scheme, "x")
