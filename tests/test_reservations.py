"""Tests for the reservations application (repro.workloads.reservations)."""

import pytest

from repro.core.polyvalue import Polyvalue, is_polyvalue
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.reservations import (
    ReservationsWorkload,
    cancel,
    flight_items,
    might_be_full,
    never_oversold,
    reserve,
    seats_remaining,
)

from tests.conftest import run_to_decision


def airline(flights=3, sold=0, seed=5):
    items = {flight: sold for flight in flight_items(flights)}
    return DistributedSystem.build(sites=3, items=items, seed=seed)


class TestPureHelpers:
    def test_flight_items_naming(self):
        assert flight_items(2) == ["flight-00", "flight-01"]

    def test_never_oversold_simple(self):
        assert never_oversold(99, 100)
        assert not never_oversold(101, 100)

    def test_never_oversold_polyvalue(self):
        sold = Polyvalue.in_doubt("T1", 96, 95)
        assert never_oversold(sold, 100)
        assert not never_oversold(Polyvalue.in_doubt("T1", 101, 95), 100)

    def test_might_be_full(self):
        sold = Polyvalue.in_doubt("T1", 100, 95)
        assert might_be_full(sold, 100)
        assert not might_be_full(95, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            reserve("flight-00", 0)
        with pytest.raises(ValueError):
            cancel("flight-00", 0)


class TestReserve:
    def test_grant_when_room(self):
        system = airline()
        handle = system.submit(reserve("flight-00", capacity=100))
        run_to_decision(system, handle)
        assert handle.outputs["granted"] is True
        assert system.read_item("flight-00") == 1

    def test_deny_when_full(self):
        system = airline(sold=100)
        handle = system.submit(reserve("flight-00", capacity=100))
        run_to_decision(system, handle)
        assert handle.outputs["granted"] is False
        assert system.read_item("flight-00") == 100

    def test_party_size_boundary(self):
        system = airline(sold=98)
        handle = system.submit(reserve("flight-00", capacity=100, party_size=2))
        run_to_decision(system, handle)
        assert handle.outputs["granted"] is True
        assert system.read_item("flight-00") == 100

    def test_cancel_floors_at_zero(self):
        system = airline(sold=1)
        handle = system.submit(cancel("flight-00", party_size=5))
        run_to_decision(system, handle)
        assert system.read_item("flight-00") == 0


def make_uncertain_sold(system, flight="flight-00", capacity=100):
    """Put the flight's sold count in doubt: a reservation whose
    coordinator crashes inside the commit window.

    Single-item transactions coordinate at the item's home site, so we
    coordinate this one at a *different* site and crash that site.
    """
    home = system.catalog.site_of(flight)
    other = next(s for s in sorted(system.sites) if s != home)
    system.submit(reserve(flight, capacity), at=other)
    system.run_for(0.05)
    system.crash_site(other)
    system.run_for(2.0)
    sold = system.read_item(flight)
    assert is_polyvalue(sold)
    return other


class TestReserveUnderUncertainty:
    def test_paper_rule_all_alternatives_grant(self):
        # "All alternative transactions of such a polytransaction will
        # decide to grant the reservation."
        system = airline(sold=10)
        make_uncertain_sold(system)  # sold = {11 if T, 10 if ~T}
        handle = system.submit(reserve("flight-00", capacity=100))
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert handle.was_polytransaction
        assert handle.outputs["granted"] is True  # certain grant
        assert is_polyvalue(system.read_item("flight-00"))

    def test_boundary_grant_becomes_uncertain(self):
        # Near capacity the decision honestly depends on the outcome.
        system = airline(sold=99)
        make_uncertain_sold(system)  # sold = {100 if T, 99 if ~T}
        handle = system.submit(reserve("flight-00", capacity=100))
        run_to_decision(system, handle)
        granted = handle.outputs["granted"]
        assert is_polyvalue(granted)
        assert set(granted.possible_values()) == {True, False}

    def test_never_oversold_invariant_through_failure(self):
        system = airline(sold=99)
        make_uncertain_sold(system)
        for _ in range(3):
            handle = system.submit(reserve("flight-00", capacity=100))
            run_to_decision(system, handle)
        assert never_oversold(system.read_item("flight-00"), 100)

    def test_uncertainty_resolves_to_exact_count(self):
        system = airline(sold=10)
        crashed = make_uncertain_sold(system)
        handle = system.submit(reserve("flight-00", capacity=100))
        run_to_decision(system, handle)
        system.recover_site(crashed)
        system.run_for(6.0)
        # First reservation presumed aborted; second committed: 11.
        assert system.read_item("flight-00") == 11
        assert system.total_polyvalues() == 0


class TestSeatsRemaining:
    def test_certain_remaining(self):
        system = airline(sold=40)
        handle = system.submit(seats_remaining("flight-00", capacity=100))
        run_to_decision(system, handle)
        assert handle.outputs["remaining"] == 60

    def test_uncertain_remaining_presented(self):
        # The §3.4 ticket-agent example: an uncertain answer is useful.
        system = airline(sold=40)
        make_uncertain_sold(system)
        handle = system.submit(seats_remaining("flight-00", capacity=100))
        run_to_decision(system, handle)
        remaining = handle.outputs["remaining"]
        assert is_polyvalue(remaining)
        assert set(remaining.possible_values()) == {59, 60}


class TestWorkloadDriver:
    def test_stream_respects_capacity(self):
        system = airline(sold=0)
        capacities = {flight: 10 for flight in flight_items(3)}
        workload = ReservationsWorkload(system, capacities, seed=13)
        for _ in range(40):
            workload.submit_one()
            system.run_for(0.3)
        system.run_for(3.0)
        for flight in flight_items(3):
            assert never_oversold(system.read_item(flight), 10)
