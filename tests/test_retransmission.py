"""Bounded retransmission in the outcome-maintenance loop.

The acceptance property for the resilience layer: a 60-simulated-second
single-site outage produces a *bounded* (backoff-capped) number of
retransmissions per owed notification — O(log outage), not one per
maintenance tick — and the historical flat cadence is still available
by configuration.

Also covered: the per-pass dedup between ``_pending_notifies`` (section
3.3 relay duties) and the outcome log's unacknowledged participants,
down-peer suppression, and the liveness reset when the peer speaks.
"""

import math

import pytest

from repro.txn import protocol
from repro.txn.config import ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.timeouts import RetryPolicy

from tests.conftest import move

OUTAGE = 60.0

FLAT = RetryPolicy(backoff_factor=1.0, jitter=0.0, suppression_threshold=10**9)


def build_pair(retry=None):
    config = ProtocolConfig() if retry is None else ProtocolConfig(retry=retry)
    return DistributedSystem.build(
        sites=2,
        items={"item-0": 100, "item-1": 100},
        seed=5,
        config=config,
    )


def run_outage(system):
    """Commit a transfer, crash the participant in the ack window, run
    the outage, and return the retransmission count."""
    system.submit(move("item-0", "item-1", 10))
    log = system.sites["site-0"].runtime.outcome_log
    # The ack window: the decision is durable and Complete is out, but
    # site-1's OutcomeAck has not come back yet.
    deadline = system.sim.now + 5.0
    while not log.pending() and system.sim.now < deadline:
        system.run_for(0.002)
    assert log.pending(), "never entered the ack window"
    system.crash_site("site-1")
    system.run_for(OUTAGE)
    return system.metrics.notify_retransmissions


class TestBoundedOutageCost:
    def test_backoff_caps_sends_per_owed_notification(self):
        # One owed notification, 60 s outage.  With base 1 s, factor 2,
        # cap 8 s the resend times are ~1,3,7,15,23,31,... — at most
        # ceil(log2(cap)) + outage/cap + 1 sends, far below the ~60 a
        # flat 1 s cadence produces.
        retransmissions = run_outage(build_pair())
        policy = RetryPolicy()
        bound = (
            math.ceil(math.log2(policy.backoff_cap))
            + math.ceil(OUTAGE / policy.backoff_cap)
            + 1
        )
        assert 1 <= retransmissions <= bound
        assert retransmissions <= 13

    def test_flat_policy_sends_every_tick(self):
        retransmissions = run_outage(build_pair(retry=FLAT))
        assert retransmissions >= OUTAGE - 2

    def test_backoff_is_deterministic(self):
        assert run_outage(build_pair()) == run_outage(build_pair())

    def test_recovered_peer_still_converges(self):
        system = build_pair()
        run_outage(system)
        system.recover_site("site-1")
        assert system.settle(max_time=system.sim.now + 30.0)
        assert system.sites["site-0"].runtime.outcome_log.pending() == frozenset()


class TestNotifyDedup:
    def test_one_send_per_pair_per_pass(self):
        # Force the same (txn, site) into BOTH owed sources: the relay
        # table and the outcome log's unacknowledged set.  One pass must
        # send exactly one OutcomeNotify for it.
        system = build_pair()
        site0 = system.sites["site-0"]
        txn = "T99@site-0"
        site0.runtime.outcome_log.decide(txn, True, participants=["site-1"])
        site0._pending_notifies[(txn, "site-1")] = True
        system.crash_site("site-1")  # keep acks from clearing the duty
        sent = []
        system.network.subscribe(
            lambda event, envelope, now: sent.append(envelope.payload)
            if event == "send"
            and isinstance(envelope.payload, protocol.OutcomeNotify)
            and envelope.payload.txn == txn
            else None
        )
        site0._outcome_maintenance()
        assert len(sent) == 1

    def test_self_entries_are_acknowledged_not_sent(self):
        system = build_pair()
        site0 = system.sites["site-0"]
        txn = "T98@site-0"
        site0.runtime.outcome_log.decide(txn, True, participants=["site-0"])
        assert site0._owed_notifications() == {}
        assert txn not in site0.runtime.outcome_log.pending()


class TestSuppression:
    def test_new_entries_for_suppressed_peer_start_in_window(self):
        system = build_pair()
        site0 = system.sites["site-0"]
        policy = site0.runtime.config.retry
        system.crash_site("site-1")
        site0._peer_strikes["site-1"] = policy.suppression_threshold
        txn = "T97@site-0"
        site0._pending_notifies[(txn, "site-1")] = True
        before = system.metrics.notify_retransmissions
        site0._outcome_maintenance()
        state = site0._retry[(txn, "site-1")]
        assert state.attempts == 0
        assert state.next_at == pytest.approx(
            system.sim.now + policy.suppression_window
        )
        assert system.metrics.notify_retransmissions == before

    def test_inbound_message_resets_suppression_and_rearms(self):
        system = build_pair()
        site0 = system.sites["site-0"]
        policy = site0.runtime.config.retry
        txn = "T96@site-0"
        site0._pending_notifies[(txn, "site-1")] = True
        site0._peer_strikes["site-1"] = 5
        site0._outcome_maintenance()  # seeds retry state
        state = site0._retry[(txn, "site-1")]
        state.next_at = system.sim.now + 1000.0
        state.attempts = 7
        site0._note_peer_alive("site-1")
        assert site0._peer_strikes["site-1"] == 0
        assert state.attempts == 0
        base = policy.base(site0.runtime.config.outcome_query_interval)
        assert state.next_at <= system.sim.now + base

    def test_retry_state_is_volatile_across_crash(self):
        system = build_pair()
        site0 = system.sites["site-0"]
        site0._pending_notifies[("T95@site-0", "site-1")] = True
        site0._retry.clear()
        site0._outcome_maintenance()
        assert site0._retry
        system.crash_site("site-0")
        assert site0._retry == {}
        assert site0._peer_strikes == {}
