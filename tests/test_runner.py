"""Tests for the experiment runner (repro.workloads.runner)."""

import pytest

from repro.core.errors import SimulationError
from repro.net.failures import CrashPlan, ScriptedFailures
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.generator import (
    RandomUpdateWorkload,
    WorkloadConfig,
    make_item_ids,
)
from repro.workloads.runner import ExperimentRunner, RunReport, serial_replay

from tests.conftest import increment, move, run_to_decision


def build(items=10, seed=3, **kwargs):
    values = {item: 1 for item in make_item_ids(items)}
    system = DistributedSystem.build(sites=3, items=values, seed=seed, **kwargs)
    return system, values


class TestSerialReplay:
    def test_empty_history_is_initial_state(self):
        assert serial_replay([], {"a": 1}) == {"a": 1}

    def test_committed_only_are_replayed(self):
        system, values = build(items=4)
        good = system.submit(increment("item-0000"))
        run_to_decision(system, good)
        conflicted_a = system.submit(increment("item-0001"))
        conflicted_b = system.submit(increment("item-0001"))
        system.run_for(3.0)
        replayed = serial_replay(system.handles, values)
        assert replayed == system.database_state()

    def test_replay_order_is_commit_order(self):
        system, values = build(items=4)
        first = system.submit(move("item-0000", "item-0001", 1))
        run_to_decision(system, first)
        second = system.submit(move("item-0001", "item-0002", 2))
        run_to_decision(system, second)
        replayed = serial_replay(system.handles, values)
        assert replayed == system.database_state()


class TestRunner:
    def test_clean_run_report(self):
        system, values = build()
        workload = RandomUpdateWorkload(
            system, WorkloadConfig(update_rate=10), seed=3
        )
        runner = ExperimentRunner(
            system, workload=workload, initial_values=values
        )
        report = runner.run(5.0, settle=5.0)
        assert report.converged
        assert report.serially_equivalent is True
        assert report.committed > 10
        assert report.pending == 0
        assert report.commit_rate > 0.5
        assert report.final_state == system.database_state()

    def test_run_with_failures_converges(self):
        system, values = build(seed=9, base_latency=0.05, jitter=0.02)
        workload = RandomUpdateWorkload(
            system, WorkloadConfig(update_rate=12), seed=9
        )
        ScriptedFailures(
            system.sim,
            system,
            [
                CrashPlan("site-0", at=1.0, duration=1.5),
                CrashPlan("site-1", at=3.0, duration=1.0),
            ],
        )
        runner = ExperimentRunner(
            system, workload=workload, initial_values=values
        )
        report = runner.run(6.0, settle=10.0)
        assert report.converged
        assert report.serially_equivalent is True
        assert report.polyvalues_resolved == report.polyvalues_installed

    def test_report_without_initial_values_skips_replay(self):
        system, _ = build()
        runner = ExperimentRunner(system)
        handle = system.submit(increment("item-0000"))
        report = runner.run(2.0, settle=1.0)
        assert report.serially_equivalent is None
        assert report.committed == 1

    def test_summary_lines_render(self):
        system, values = build()
        runner = ExperimentRunner(system, initial_values=values)
        system.submit(increment("item-0000"))
        report = runner.run(2.0, settle=1.0)
        text = "\n".join(report.summary_lines())
        assert "committed" in text
        assert "serially equivalent" in text

    def test_non_convergence_reported_not_raised(self):
        # A permanently crashed site strands its items' handles? No —
        # handles decide; but a polyvalue on an up site whose
        # coordinator never recovers cannot resolve.
        system, values = build(seed=9)
        system.submit(move("item-0000", "item-0001", 1))  # 0 at site-0
        system.run_for(0.035)
        system.crash_site("site-0")
        runner = ExperimentRunner(system, initial_values=values)
        report = runner.run(1.0, settle=3.0, settle_step=1.0, max_settle=6.0)
        assert not report.converged
        assert report.residual_polyvalues >= 1

    def test_invalid_duration(self):
        system, _ = build()
        with pytest.raises(SimulationError):
            ExperimentRunner(system).run(0.0)
