"""Unit tests for protocol runtime plumbing (repro.txn.runtime)."""

import pytest

from repro.core.outcome import OutcomeLog, OutcomeTable
from repro.core.polyvalue import Polyvalue, is_polyvalue
from repro.db.catalog import Catalog
from repro.db.locks import LockManager
from repro.db.store import ItemStore
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.runtime.sim import SimRuntime
from repro.sim.engine import Simulator
from repro.sim.rand import Rng
from repro.txn.config import CommitPolicy, ProtocolConfig
from repro.txn.runtime import SiteRuntime, SiteState, TransitionLog


def make_runtime(initial=None):
    sim = Simulator()
    network = Network(sim, Rng(0))
    runtime = SiteRuntime(
        site_id="s1",
        rt=SimRuntime(sim, network),
        catalog=Catalog.from_mapping({"a": "s1"}),
        store=ItemStore(initial or {"a": 1}),
        locks=LockManager(),
        outcomes=OutcomeTable(),
        outcome_log=OutcomeLog(),
        config=ProtocolConfig(),
        metrics=MetricsCollector(),
        transitions=TransitionLog(),
    )
    network.register("s1", lambda e: None)
    return runtime


class TestTransitionLog:
    def test_record_and_counts(self):
        log = TransitionLog()
        log.record(1.0, "s1", "T1", SiteState.IDLE, SiteState.COMPUTE, "begin")
        log.record(2.0, "s1", "T1", SiteState.COMPUTE, SiteState.WAIT, "ready")
        counts = log.edge_counts()
        assert counts[("idle", "begin", "compute")] == 1
        assert counts[("compute", "ready", "wait")] == 1

    def test_valid_edges_accepted(self):
        log = TransitionLog()
        for source, trigger, target in [
            (SiteState.IDLE, "begin", SiteState.COMPUTE),
            (SiteState.WAIT, "wait-timeout", SiteState.IDLE),
        ]:
            log.record(0.0, "s1", "T1", source, target, trigger)
        assert log.all_edges_valid()

    def test_invalid_edge_detected(self):
        log = TransitionLog()
        log.record(0.0, "s1", "T1", SiteState.IDLE, SiteState.WAIT, "teleport")
        assert not log.all_edges_valid()

    def test_figure1_has_seven_edges(self):
        # Three wait exits, two compute exits plus ready, one idle exit.
        assert len(TransitionLog.FIGURE_1_EDGES) == 7


class TestScheduleGuard:
    def test_timer_dropped_while_site_down(self):
        runtime = make_runtime()
        fired = []
        runtime.schedule(1.0, lambda: fired.append(True))
        runtime.up = False
        runtime.rt.sim.run()
        assert fired == []

    def test_timer_fires_when_up(self):
        runtime = make_runtime()
        fired = []
        runtime.schedule(1.0, lambda: fired.append(True))
        runtime.rt.sim.run()
        assert fired == [True]


class TestApplyWrite:
    def test_simple_write(self):
        runtime = make_runtime()
        runtime.apply_write("a", 5)
        assert runtime.store.read("a") == 5
        assert runtime.metrics.polyvalues_installed == 0

    def test_polyvalue_write_records_dependencies(self):
        runtime = make_runtime()
        pv = Polyvalue.in_doubt("T9@s2", 2, 1)
        runtime.apply_write("a", pv)
        assert runtime.outcomes.dependent_items("T9@s2") == frozenset({"a"})
        assert runtime.metrics.polyvalues_installed == 1
        assert runtime.metrics.current_polyvalues == 1

    def test_simple_over_polyvalue_clears_dependencies(self):
        runtime = make_runtime()
        runtime.apply_write("a", Polyvalue.in_doubt("T9@s2", 2, 1))
        runtime.apply_write("a", 7)
        assert not runtime.outcomes.tracks("T9@s2")
        assert runtime.metrics.polyvalues_resolved == 1
        assert runtime.metrics.current_polyvalues == 0

    def test_poly_over_poly_replaces_dependencies(self):
        runtime = make_runtime()
        runtime.apply_write("a", Polyvalue.in_doubt("T1@s2", 2, 1))
        runtime.apply_write("a", Polyvalue.in_doubt("T2@s2", 3, 1))
        assert not runtime.outcomes.tracks("T1@s2")
        assert runtime.outcomes.tracks("T2@s2")
        assert runtime.metrics.polyvalues_installed == 1  # still one item

    def test_known_outcomes_reduce_eagerly(self):
        runtime = make_runtime()
        runtime.known_outcomes["T9@s2"] = True
        runtime.apply_write("a", Polyvalue.in_doubt("T9@s2", 2, 1))
        assert runtime.store.read("a") == 2
        assert not is_polyvalue(runtime.store.read("a"))
        assert runtime.metrics.polyvalues_installed == 0

    def test_certain_polyvalue_collapses(self):
        runtime = make_runtime()
        runtime.apply_write("a", Polyvalue.in_doubt("T9@s2", 5, 5))
        assert runtime.store.read("a") == 5
        assert runtime.metrics.polyvalues_installed == 0


class TestProtocolConfig:
    def test_defaults(self):
        config = ProtocolConfig()
        assert config.policy is CommitPolicy.POLYVALUE
        assert config.wait_timeout > 0
        assert config.max_alternatives >= 2

    def test_frozen(self):
        config = ProtocolConfig()
        with pytest.raises(Exception):
            config.policy = CommitPolicy.BLOCKING
