"""The Runtime seam: base contract, Periodic, SimRuntime, and the
relocation shims for names that moved out of repro.txn.runtime."""

from __future__ import annotations

import warnings

import pytest

from repro.core.errors import SimulationError
from repro.net.network import Network
from repro.runtime import Periodic, Runtime, SimRuntime, TimerHandle
from repro.sim.engine import Simulator
from repro.sim.rand import Rng


def make_sim_runtime():
    sim = Simulator()
    network = Network(sim, rng=Rng(0), base_latency=0.01, jitter=0.0)
    return sim, network, SimRuntime(sim, network, rng=Rng(0))


class TestRuntimeContract:
    def test_base_runtime_is_abstract(self):
        rt = Runtime()
        with pytest.raises(NotImplementedError):
            rt.now
        with pytest.raises(NotImplementedError):
            rt.schedule(1.0, lambda: None)
        with pytest.raises(NotImplementedError):
            rt.send("a", "b", object())
        with pytest.raises(NotImplementedError):
            rt.register("a", lambda env: None)
        with pytest.raises(NotImplementedError):
            rt.rng("stream")

    def test_base_durability_hooks_are_noops(self):
        rt = Runtime()
        assert rt.durable is False
        rt.attach_durability("s1", dict)
        rt.checkpoint("s1")
        assert rt.load_durable("s1") is None


class TestSimRuntime:
    def test_clock_and_timers_delegate_to_the_simulator(self):
        sim, _, rt = make_sim_runtime()
        fired = []
        handle = rt.schedule(0.5, lambda: fired.append(rt.now), label="t")
        assert isinstance(handle, TimerHandle)
        sim.run()
        assert fired == [0.5]
        assert rt.now == sim.now

    def test_cancelled_timer_does_not_fire(self):
        sim, _, rt = make_sim_runtime()
        fired = []
        handle = rt.schedule(0.5, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_transport_delegates_to_the_network(self):
        sim, _, rt = make_sim_runtime()
        got = []
        rt.register("s2", got.append)
        rt.send("s1", "s2", "payload")
        sim.run()
        assert len(got) == 1
        assert got[0].payload == "payload"
        assert got[0].sender == "s1"

    def test_rng_streams_are_forked_and_stable(self):
        _, _, rt = make_sim_runtime()
        _, _, rt2 = make_sim_runtime()
        assert rt.rng("a").uniform(0, 1) == rt2.rng("a").uniform(0, 1)
        assert rt.rng("a").uniform(0, 1) != rt.rng("b").uniform(0, 1)


class TestPeriodic:
    def test_fires_every_period_until_stopped(self):
        sim, _, rt = make_sim_runtime()
        times = []
        task = Periodic(rt, 1.0, lambda: times.append(rt.now))
        sim.run_until(3.5)
        task.stop()
        sim.run()
        assert times == [1.0, 2.0, 3.0]

    def test_action_stopping_itself_prevents_rearm(self):
        sim, _, rt = make_sim_runtime()
        times = []
        task = Periodic(rt, 1.0, lambda: (times.append(rt.now), task.stop()))
        sim.run()
        assert times == [1.0]

    def test_rejects_nonpositive_period(self):
        _, _, rt = make_sim_runtime()
        with pytest.raises(SimulationError):
            Periodic(rt, 0.0, lambda: None)


class TestMovedNameShims:
    """Names relocated to repro.txn.config still import, with a warning."""

    @pytest.mark.parametrize(
        "name",
        [
            "CommitPolicy",
            "CommitProtocol",
            "ProtocolConfig",
            "PROTOCOL_NAMES",
            "config_for_protocol",
        ],
    )
    def test_txn_runtime_shim_warns_and_forwards(self, name):
        import repro.txn.config as config
        import repro.txn.runtime as runtime

        with pytest.warns(DeprecationWarning, match="repro.txn.config"):
            value = getattr(runtime, name)
        assert value is getattr(config, name)

    def test_unknown_attribute_still_raises(self):
        import repro.txn.runtime as runtime

        with pytest.raises(AttributeError):
            runtime.does_not_exist

    def test_canonical_import_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.txn.config import ProtocolConfig  # noqa: F401
