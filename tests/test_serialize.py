"""Tests for condition/polyvalue serialization (repro.core.serialize)."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.conditions import Condition
from repro.core.polyvalue import Polyvalue, is_polyvalue
from repro.core.serialize import (
    SerializationError,
    decode_condition,
    decode_state,
    decode_value,
    encode_condition,
    encode_state,
    encode_value,
)

T1 = Condition.of("T1")
T2 = Condition.of("T2")


def roundtrip_value(value):
    return decode_value(json.loads(json.dumps(encode_value(value))))


class TestConditionRoundtrip:
    def test_simple_literal(self):
        assert decode_condition(encode_condition(T1)) == T1

    def test_negative_literal(self):
        assert decode_condition(encode_condition(~T1)) == ~T1

    def test_true_and_false(self):
        assert decode_condition(encode_condition(Condition.true())).is_true()
        assert decode_condition(encode_condition(Condition.false())).is_false()

    def test_sum_of_products(self):
        condition = (T1 & ~T2) | (~T1 & T2)
        assert decode_condition(encode_condition(condition)) == condition

    def test_json_compatible(self):
        blob = encode_condition((T1 & T2) | ~T1)
        rehydrated = decode_condition(json.loads(json.dumps(blob)))
        assert rehydrated == (T1 & T2) | ~T1

    def test_encoding_is_deterministic(self):
        a = encode_condition((T1 & ~T2) | T2)
        b = encode_condition(T2 | (~T2 & T1))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_decode_rejects_garbage(self):
        with pytest.raises(SerializationError):
            decode_condition({"products": []})
        with pytest.raises(SerializationError):
            decode_condition({"__condition__": 1, "products": "nope"})
        with pytest.raises(SerializationError):
            decode_condition(
                {"__condition__": 1, "products": [[{"txn": 3, "positive": True}]]}
            )

    def test_decode_rejects_future_version(self):
        blob = encode_condition(T1)
        blob["__condition__"] = 99
        with pytest.raises(SerializationError):
            decode_condition(blob)


class TestValueRoundtrip:
    def test_simple_values_pass_through(self):
        for value in (None, True, 0, 1.5, "x", [1, 2], {"k": "v"}):
            assert roundtrip_value(value) == value

    def test_polyvalue_roundtrip(self):
        pv = Polyvalue.in_doubt("T1", 130, 100)
        assert roundtrip_value(pv) == pv

    def test_nested_condition_polyvalue_roundtrip(self):
        inner = Polyvalue.in_doubt("T1", 1, 2)
        outer = Polyvalue([(inner, T2), ("other", ~T2)])
        assert roundtrip_value(outer) == outer

    def test_certain_polyvalue_decodes_collapsed(self):
        blob = encode_value(Polyvalue.in_doubt("T1", 130, 100))
        # Simulate outcome resolution happening structurally: both pairs
        # carry the same value.
        for pair in blob["pairs"]:
            pair["value"] = 7
        assert decode_value(blob) == 7

    def test_structured_simple_values_in_pairs(self):
        pv = Polyvalue([([1, {"a": 2}], T1), ("fallback", ~T1)])
        assert roundtrip_value(pv) == pv

    def test_unserializable_value_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(object())
        with pytest.raises(SerializationError):
            encode_value(Polyvalue([(object(), T1), (1, ~T1)]))

    def test_reserved_keys_rejected_in_app_data(self):
        with pytest.raises(SerializationError):
            encode_value({"__polyvalue__": 1})

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(SerializationError):
            encode_value({1: "x"})

    def test_decode_validates_polyvalue_wellformedness(self):
        blob = {
            "__polyvalue__": 1,
            "pairs": [
                {"value": 1, "condition": encode_condition(T1)},
                {"value": 2, "condition": encode_condition(Condition.true())},
            ],
        }
        with pytest.raises(Exception):  # OverlappingConditionsError
            decode_value(blob)

    def test_decode_rejects_bare_condition(self):
        with pytest.raises(SerializationError):
            decode_value(encode_condition(T1))

    def test_decode_rejects_empty_pairs(self):
        with pytest.raises(SerializationError):
            decode_value({"__polyvalue__": 1, "pairs": []})


class TestStateRoundtrip:
    def test_mixed_state(self):
        state = {
            "a": 100,
            "b": Polyvalue.in_doubt("T1", 130, 100),
            "c": "hello",
        }
        rehydrated = decode_state(json.loads(json.dumps(encode_state(state))))
        assert rehydrated == state

    def test_live_system_state_roundtrips(self):
        from repro.txn.system import DistributedSystem
        from repro.txn.transaction import Transaction

        system = DistributedSystem.build(
            sites=3, items={"x": 1, "y": 2, "z": 3}, seed=3, jitter=0.0
        )

        def move(ctx):
            ctx.write("x", ctx.read("x") - 1)
            ctx.write("y", ctx.read("y") + 1)

        system.submit(Transaction(body=move, items=("x", "y")))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(1.0)
        state = system.database_state()
        assert any(is_polyvalue(v) for v in state.values())
        assert decode_state(json.loads(json.dumps(encode_state(state)))) == state

    def test_decode_state_rejects_non_mapping(self):
        with pytest.raises(SerializationError):
            decode_state([1, 2, 3])


@given(
    st.recursive(
        st.integers(-10, 10),
        lambda sub: st.builds(
            lambda txn, new, old: Polyvalue.in_doubt(txn, new, old),
            st.sampled_from(["T1", "T2", "T3"]),
            sub,
            sub,
        ),
        max_leaves=6,
    )
)
def test_property_roundtrip_arbitrary_nested(value):
    assert roundtrip_value(value) == value
