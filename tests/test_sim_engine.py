"""Unit tests for the discrete-event kernel (repro.sim)."""

import pytest

from repro.core.errors import SimulationError
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.events import Event


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("first"))
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.events_pending == 1


class TestRunControl:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_run_until_inclusive_of_boundary_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run_until(3.0)
        assert fired == [3]

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(2.0)

    def test_repeated_run_until_resumes(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run_until(1.5)
        sim.run_until(2.5)
        sim.run_until(3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for t in range(5):
            sim.schedule(float(t + 1), lambda t=t: fired.append(t))
        sim.run(max_events=2)
        assert len(fired) == 2

    def test_run_while_predicate(self):
        sim = Simulator()
        fired = []
        for t in range(10):
            sim.schedule(float(t + 1), lambda t=t: fired.append(t))
        sim.run_while(lambda: len(fired) < 4)
        assert len(fired) == 4

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(3):
            sim.schedule(float(t + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 3


class TestPeriodicTask:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 2.0, lambda: ticks.append(sim.now))
        sim.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_stop_halts_future_firings(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run_until(2.5)
        task.stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_during_callback(self):
        sim = Simulator()
        ticks = []
        task = None

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(sim, 1.0, tick)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_non_positive_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)


class TestEventRepr:
    def test_repr_shows_time_and_label(self):
        event = Event(time=1.5, seq=3, action=lambda: None, label="tick")
        assert "tick" in repr(event)
        assert "1.5" in repr(event)

    def test_repr_marks_cancelled(self):
        event = Event(time=1.5, seq=3, action=lambda: None)
        event.cancel()
        assert "cancelled" in repr(event)
