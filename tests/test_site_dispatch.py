"""Unit tests for DatabaseSite message dispatch and edge cases
(repro.txn.site)."""

import pytest

from repro.core.errors import ProtocolError
from repro.net.message import Envelope
from repro.txn import protocol
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus

from tests.conftest import increment, move, run_to_decision


def build(seed=7):
    return DistributedSystem.build(
        sites=3,
        items={"a": 10, "b": 20, "c": 30},
        seed=seed,
        jitter=0.0,
    )


def inject(system, sender, recipient, payload):
    """Deliver a raw protocol message directly to a site."""
    site = system.sites[recipient]
    site.on_message(
        Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            sent_at=system.sim.now,
        )
    )


class TestDuplicateAndStray:
    def test_duplicate_read_request_ignored(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        system.run_for(0.012)  # ReadRequests delivered
        inject(
            system,
            "site-0",
            "site-1",
            protocol.ReadRequest(txn=handle.txn, items=("b",)),
        )
        run_to_decision(system, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert system.read_item("b") == 21

    def test_stray_complete_is_harmless(self):
        system = build()
        inject(system, "site-0", "site-1", protocol.Complete(txn="T99@site-0"))
        system.run_for(1.0)
        assert system.read_item("b") == 20
        # The stray outcome is cached but has no dependents to reduce.
        assert system.sites["site-1"].runtime.known_outcomes["T99@site-0"] is True

    def test_stray_abort_is_harmless(self):
        system = build()
        inject(system, "site-0", "site-1", protocol.Abort(txn="T99@site-0"))
        system.run_for(1.0)
        assert system.read_item("b") == 20

    def test_stray_ready_ignored_by_coordinator(self):
        system = build()
        inject(
            system,
            "site-1",
            "site-0",
            protocol.Ready(txn="T99@site-0", site="site-1"),
        )
        system.run_for(1.0)  # no crash, no effect

    def test_stray_outcome_ack_ignored(self):
        system = build()
        inject(
            system,
            "site-1",
            "site-0",
            protocol.OutcomeAck(txn="T99@site-0", site="site-1"),
        )
        system.run_for(1.0)

    def test_unknown_payload_raises(self):
        system = build()
        with pytest.raises(ProtocolError):
            inject(system, "site-0", "site-1", "not a protocol message")


class TestOutcomeQueries:
    def test_query_for_committed_txn_answered_true(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        run_to_decision(system, handle)
        inject(
            system,
            "site-2",
            "site-0",
            protocol.OutcomeQuery(txn=handle.txn, requester="site-2"),
        )
        system.run_for(0.5)
        assert system.sites["site-2"].runtime.known_outcomes[handle.txn] is True

    def test_query_for_unknown_txn_presumed_abort(self):
        system = build()
        inject(
            system,
            "site-2",
            "site-0",
            protocol.OutcomeQuery(txn="T424242@site-0", requester="site-2"),
        )
        system.run_for(0.5)
        assert (
            system.sites["site-2"].runtime.known_outcomes["T424242@site-0"]
            is False
        )

    def test_misdirected_query_unanswered(self):
        system = build()
        inject(
            system,
            "site-2",
            "site-1",  # not the coordinator embedded in the txn id
            protocol.OutcomeQuery(txn="T1@site-0", requester="site-2"),
        )
        system.run_for(0.5)
        assert "T1@site-0" not in system.sites["site-2"].runtime.known_outcomes

    def test_query_for_undecided_txn_gets_no_answer_yet(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        system.run_for(0.005)  # still undecided
        inject(
            system,
            "site-2",
            "site-0",
            protocol.OutcomeQuery(txn=handle.txn, requester="site-2"),
        )
        system.run_for(0.004)
        assert handle.txn not in system.sites["site-2"].runtime.known_outcomes


class TestOutcomeLogGc:
    def test_commit_record_collected_after_all_acks(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        run_to_decision(system, handle)
        system.run_for(1.0)
        # Both participants acked the complete; the durable record is gone.
        assert not system.sites["site-0"].runtime.outcome_log.knows(handle.txn)

    def test_commit_record_retained_until_lost_participant_acks(self):
        system = build()
        handle = system.submit(move("a", "b", 1))
        system.run_for(0.041)  # decision imminent/made; completes in flight
        system.network.partition("site-0", "site-1")
        system.run_for(1.0)
        if handle.status is TxnStatus.COMMITTED:
            log = system.sites["site-0"].runtime.outcome_log
            assert log.knows(handle.txn)  # site-1 never acked
            system.network.heal_all()
            system.run_for(5.0)
            assert not log.knows(handle.txn)


class TestCrashedSiteIgnoresTraffic:
    def test_messages_to_down_site_have_no_effect(self):
        system = build()
        system.crash_site("site-1")
        # Bypass the network (which would drop it) and call the handler
        # directly: the belt-and-braces guard must still ignore it.
        inject(system, "site-0", "site-1", protocol.Complete(txn="T9@site-0"))
        assert "T9@site-0" not in system.sites["site-1"].runtime.known_outcomes
