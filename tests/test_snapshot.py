"""Tests for whole-system snapshots (repro.txn.snapshot)."""

import json

import pytest

from repro.core.errors import ReproError
from repro.core.polyvalue import is_polyvalue
from repro.txn.snapshot import export_snapshot, import_snapshot
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus

from tests.conftest import increment, move, run_to_decision


def build(seed=13):
    return DistributedSystem.build(
        sites=3,
        items={f"item-{index}": 100 for index in range(6)},
        seed=seed,
        jitter=0.0,
    )


def snapshot_roundtrip(system):
    blob = json.loads(json.dumps(export_snapshot(system)))
    return import_snapshot(blob, seed=99)


class TestCleanSnapshot:
    def test_roundtrip_preserves_values_and_placement(self):
        system = build()
        handle = system.submit(move("item-0", "item-1", 25))
        run_to_decision(system, handle)
        restored = snapshot_roundtrip(system)
        assert restored.database_state() == system.database_state()
        for item in system.catalog.all_items():
            assert restored.catalog.site_of(item) == system.catalog.site_of(item)

    def test_restored_system_processes_transactions(self):
        system = build()
        restored = snapshot_roundtrip(system)
        handle = restored.submit(increment("item-2"))
        run_to_decision(restored, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert restored.read_item("item-2") == 101

    def test_version_check(self):
        with pytest.raises(ReproError):
            import_snapshot({"version": 99})

    def test_missing_section_rejected(self):
        with pytest.raises(ReproError):
            import_snapshot({"version": 1, "placement": {}})


class TestMidUncertaintySnapshot:
    def make_uncertain(self, committed):
        """A system with item-1 polyvalued; the in-doubt transaction's
        real outcome is *committed* (durable log) or aborted (no log)."""
        system = build()
        handle = system.submit(move("item-0", "item-1", 30))
        if committed:
            # Let the coordinator decide COMMIT but partition the
            # participant so the complete is lost.
            system.run_for(0.041)
            system.network.partition("site-0", "site-1")
            system.run_for(1.0)
            assert handle.status is TxnStatus.COMMITTED
        else:
            system.run_for(0.035)
            system.crash_site("site-0")
            system.run_for(1.0)
        assert is_polyvalue(system.read_item("item-1"))
        return system, handle

    def test_polyvalues_survive_the_roundtrip(self):
        system, _ = self.make_uncertain(committed=False)
        restored = snapshot_roundtrip(system)
        value = restored.read_item("item-1")
        assert is_polyvalue(value)
        assert set(value.possible_values()) == {130, 100}

    def test_restored_aborted_doubt_resolves_to_old_value(self):
        system, _ = self.make_uncertain(committed=False)
        restored = snapshot_roundtrip(system)
        restored.run_for(10.0)
        assert restored.read_item("item-1") == 100
        assert restored.total_polyvalues() == 0
        assert restored.outcome_bookkeeping_size() == 0

    def test_restored_committed_doubt_resolves_to_new_value(self):
        # The durable commit log travels with the snapshot; without it
        # this would wrongly presume abort.
        system, _ = self.make_uncertain(committed=True)
        restored = snapshot_roundtrip(system)
        restored.run_for(10.0)
        assert restored.read_item("item-1") == 130
        assert restored.read_item("item-0") == 70
        assert restored.total_polyvalues() == 0

    def test_restored_system_can_work_before_resolution(self):
        system, _ = self.make_uncertain(committed=False)
        blob = export_snapshot(system)
        restored = import_snapshot(
            blob,
            seed=5,
            config=None,
        )
        # Crash the coordinator in the restored world too, so the doubt
        # persists while we work against it.
        restored.crash_site("site-0")
        handle = restored.submit(increment("item-1"), at="site-1")
        run_to_decision(restored, handle)
        assert handle.status is TxnStatus.COMMITTED
        assert handle.was_polytransaction
        restored.recover_site("site-0")
        restored.run_for(10.0)
        assert restored.read_item("item-1") == 101

    def test_snapshot_is_json_serialisable(self):
        system, _ = self.make_uncertain(committed=False)
        text = json.dumps(export_snapshot(system))
        assert "item-1" in text
        assert "__polyvalue__" in text
