"""Unit tests for per-site storage (repro.db.store)."""

import pytest

from repro.core.errors import UnknownItemError
from repro.core.polyvalue import Polyvalue
from repro.db.store import ItemStore


def pv(new=1, old=2, txn="T1"):
    return Polyvalue.in_doubt(txn, new, old)


class TestReads:
    def test_read_initial_value(self):
        store = ItemStore({"a": 10})
        assert store.read("a") == 10

    def test_read_unknown_item_raises(self):
        with pytest.raises(UnknownItemError):
            ItemStore().read("missing")

    def test_contains(self):
        store = ItemStore({"a": 1})
        assert store.contains("a")
        assert not store.contains("b")

    def test_snapshot_multiple(self):
        store = ItemStore({"a": 1, "b": 2})
        assert store.snapshot(["a", "b"]) == {"a": 1, "b": 2}

    def test_items_and_len(self):
        store = ItemStore({"a": 1, "b": 2})
        assert store.items() == frozenset({"a", "b"})
        assert len(store) == 2
        assert set(iter(store)) == {"a", "b"}


class TestWrites:
    def test_write_overwrites(self):
        store = ItemStore({"a": 1})
        store.write("a", 5)
        assert store.read("a") == 5

    def test_write_unknown_item_raises(self):
        with pytest.raises(UnknownItemError):
            ItemStore().write("missing", 1)

    def test_create_new_item(self):
        store = ItemStore()
        store.create("a", 1)
        assert store.read("a") == 1

    def test_create_duplicate_raises(self):
        store = ItemStore({"a": 1})
        with pytest.raises(UnknownItemError):
            store.create("a", 2)


class TestPolyvalueAccounting:
    def test_installing_polyvalue_counts(self):
        store = ItemStore({"a": 1})
        store.write("a", pv())
        assert store.polyvalue_count() == 1
        assert store.polyvalues_installed == 1
        assert store.polyvalued_items() == ["a"]

    def test_resolving_polyvalue_counts(self):
        store = ItemStore({"a": 1})
        store.write("a", pv())
        store.write("a", 7)
        assert store.polyvalue_count() == 0
        assert store.polyvalues_resolved == 1

    def test_poly_to_poly_rewrite_counts_once(self):
        store = ItemStore({"a": 1})
        store.write("a", pv(txn="T1"))
        store.write("a", pv(txn="T2"))
        assert store.polyvalues_installed == 1
        assert store.polyvalues_resolved == 0
        assert store.polyvalue_count() == 1

    def test_all_values_is_a_copy(self):
        store = ItemStore({"a": 1})
        copy = store.all_values()
        copy["a"] = 99
        assert store.read("a") == 1
