"""Tests for parameter sweeps (repro.analysis.sweep)."""

import pytest

from repro.analysis.model import TYPICAL, steady_state_polyvalues
from repro.analysis.sweep import SWEEPABLE, SweepPoint, format_sweep_table, sweep
from repro.core.errors import ReproError


class TestSweep:
    def test_sweep_varies_requested_parameter(self):
        points = sweep(TYPICAL, "updates_per_second", [10, 100])
        assert [p.value for p in points] == [10, 100]
        assert points[0].params.U == 10
        assert points[1].params.U == 100

    def test_model_values_match_direct_computation(self):
        points = sweep(TYPICAL, "failure_probability", [0.0001, 0.001])
        for point in points:
            assert point.model == pytest.approx(
                steady_state_polyvalues(point.params)
            )

    def test_unstable_points_marked_not_raised(self):
        # Sweeping D across the stability boundary (I*R = 1000 = U*D at
        # D=100 for the typical parameters).
        points = sweep(TYPICAL, "dependency_mean", [1, 50, 200])
        assert points[0].stable
        assert points[1].stable
        assert not points[2].stable
        assert points[2].model is None

    def test_simulation_skipped_unless_requested(self):
        points = sweep(TYPICAL, "updates_per_second", [10])
        assert points[0].simulated is None

    def test_simulation_runs_when_requested(self):
        base = TYPICAL.vary(
            items=10_000, failure_probability=0.01, recovery_rate=0.01
        )
        points = sweep(
            base,
            "updates_per_second",
            [5],
            run_simulation=True,
            duration=1000.0,
            seed=7,
        )
        assert points[0].simulated is not None
        assert points[0].simulated > 0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ReproError):
            sweep(TYPICAL, "nonsense", [1])

    def test_sweepable_covers_all_model_fields(self):
        from dataclasses import fields

        from repro.analysis.model import ModelParams

        assert set(SWEEPABLE) == {f.name for f in fields(ModelParams)}


class TestFormatting:
    def test_table_contains_values(self):
        points = sweep(TYPICAL, "updates_per_second", [10, 100])
        table = format_sweep_table(points)
        assert "updates_per_second" in table
        assert "1.010" in table
        assert "11.111" in table

    def test_unstable_rendered(self):
        points = sweep(TYPICAL, "dependency_mean", [200])
        assert "unstable" in format_sweep_table(points)

    def test_empty_sweep(self):
        assert "empty" in format_sweep_table([])
