"""Unit/integration tests for the DistributedSystem facade (repro.txn.system)."""

import pytest

from repro.core.errors import ProtocolError, UnknownItemError
from repro.db.catalog import Catalog
from repro.txn.config import CommitPolicy, ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus

from tests.conftest import increment, run_to_decision


class TestBuild:
    def test_round_robin_placement(self):
        system = DistributedSystem.build(
            sites=2, items={"a": 1, "b": 2, "c": 3}, seed=0
        )
        assert system.catalog.site_of("a") == "site-0"
        assert system.catalog.site_of("b") == "site-1"
        assert system.catalog.site_of("c") == "site-0"

    def test_initial_values_loaded(self):
        system = DistributedSystem.build(sites=2, items={"a": 7}, seed=0)
        assert system.read_item("a") == 7

    def test_zero_sites_rejected(self):
        with pytest.raises(ProtocolError):
            DistributedSystem.build(sites=0, items={"a": 1})

    def test_custom_catalog_placement(self):
        catalog = Catalog.from_mapping({"x": "alpha", "y": "beta"})
        system = DistributedSystem(
            catalog=catalog, initial_values={"x": 1, "y": 2}, seed=0
        )
        assert set(system.sites) == {"alpha", "beta"}
        assert system.read_item("y") == 2

    def test_config_propagates_to_sites(self):
        config = ProtocolConfig(policy=CommitPolicy.BLOCKING)
        system = DistributedSystem.build(
            sites=2, items={"a": 1}, seed=0, config=config
        )
        assert system.sites["site-0"].runtime.config.policy is CommitPolicy.BLOCKING


class TestSubmission:
    def test_default_coordinator_is_first_item_home(self):
        system = DistributedSystem.build(sites=2, items={"a": 1, "b": 2}, seed=0)
        handle = system.submit(increment("b"))
        assert handle.txn.endswith("@site-1")

    def test_explicit_coordinator(self):
        system = DistributedSystem.build(sites=2, items={"a": 1, "b": 2}, seed=0)
        handle = system.submit(increment("b"), at="site-0")
        assert handle.txn.endswith("@site-0")

    def test_submit_to_crashed_site_fails_fast(self):
        system = DistributedSystem.build(sites=2, items={"a": 1}, seed=0)
        system.crash_site("site-0")
        handle = system.submit(increment("a"), at="site-0")
        assert handle.status is TxnStatus.ABORTED
        assert "down" in handle.abort_reason
        assert handle.was_delayed_by_failure

    def test_handles_accumulate(self):
        system = DistributedSystem.build(sites=2, items={"a": 1, "b": 2}, seed=0)
        system.submit(increment("a"))
        system.submit(increment("b"))
        assert len(system.handles) == 2

    def test_unknown_item_raises(self):
        system = DistributedSystem.build(sites=2, items={"a": 1}, seed=0)
        with pytest.raises(UnknownItemError):
            system.submit(increment("zzz"))


class TestObservations:
    def test_database_state_spans_sites(self):
        system = DistributedSystem.build(
            sites=3, items={"a": 1, "b": 2, "c": 3}, seed=0
        )
        assert system.database_state() == {"a": 1, "b": 2, "c": 3}

    def test_all_certain_initially(self):
        system = DistributedSystem.build(sites=2, items={"a": 1}, seed=0)
        assert system.all_certain()
        assert system.polyvalued_items() == []

    def test_pending_handles_tracks_decisions(self):
        system = DistributedSystem.build(sites=2, items={"a": 1}, seed=0)
        handle = system.submit(increment("a"))
        assert system.pending_handles() == [handle]
        run_to_decision(system, handle)
        assert system.pending_handles() == []

    def test_run_until_absolute(self):
        system = DistributedSystem.build(sites=2, items={"a": 1}, seed=0)
        system.run_until(5.0)
        assert system.sim.now == 5.0

    def test_determinism_same_seed_same_history(self):
        def run(seed):
            system = DistributedSystem.build(
                sites=3, items={f"i{k}": 0 for k in range(5)}, seed=seed
            )
            for k in range(5):
                system.submit(increment(f"i{k}"))
            system.run_for(0.04)
            system.crash_site("site-0")
            system.run_for(3.0)
            system.recover_site("site-0")
            system.run_for(5.0)
            return (
                system.database_state(),
                system.metrics.committed,
                system.metrics.aborted,
                [h.status for h in system.handles],
            )

        assert run(77) == run(77)

    def test_different_seeds_change_timings(self):
        def latency(seed):
            system = DistributedSystem.build(sites=2, items={"a": 1, "b": 1}, seed=seed)
            handle = system.submit(increment("a"))
            run_to_decision(system, handle)
            return handle.latency

        assert latency(1) != latency(2)
