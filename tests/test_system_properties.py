"""Property-based system tests: random schedules of work and failures.

hypothesis generates arbitrary interleavings of transaction submissions,
site crashes, recoveries and time advances; after every schedule the
system must satisfy the global guarantees the design promises:

1. every submitted transaction is decided;
2. all uncertainty resolves (no polyvalues, no bookkeeping, no locks);
3. the final database equals a serial replay of exactly the committed
   transactions in commit order (atomicity + serialisability);
4. cross-item invariants (transfer totals) hold.

These are the same invariants the scripted integration tests check, but
over schedules nobody thought to write down.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.polytransaction import execute
from repro.txn.system import DistributedSystem
from repro.txn.transaction import Transaction, TxnStatus

ITEMS = [f"item-{index}" for index in range(6)]
SITES = ["site-0", "site-1", "site-2"]
INITIAL = 100


def increment(item):
    def body(ctx):
        ctx.write(item, ctx.read(item) + 1)

    return Transaction(body=body, items=(item,), label=f"inc:{item}")


def transfer(source, target, amount):
    def body(ctx):
        value = ctx.read(source)
        if value >= amount:
            ctx.write(source, value - amount)
            ctx.write(target, ctx.read(target) + amount)

    return Transaction(
        body=body, items=(source, target), label=f"mv:{source}->{target}"
    )


# One schedule step.
steps = st.one_of(
    st.tuples(st.just("inc"), st.sampled_from(ITEMS)),
    st.tuples(
        st.just("transfer"),
        st.sampled_from(ITEMS),
        st.sampled_from(ITEMS),
        st.integers(min_value=1, max_value=10),
    ),
    st.tuples(st.just("crash"), st.sampled_from(SITES)),
    st.tuples(st.just("recover"), st.sampled_from(SITES)),
    st.tuples(
        st.just("advance"), st.floats(min_value=0.01, max_value=1.0)
    ),
)

schedules = st.lists(steps, min_size=1, max_size=14)


def run_schedule(schedule, seed):
    system = DistributedSystem.build(
        sites=3,
        items={item: INITIAL for item in ITEMS},
        seed=seed,
    )
    down = set()
    for step in schedule:
        kind = step[0]
        if kind == "inc":
            system.submit(increment(step[1]))
        elif kind == "transfer":
            source, target, amount = step[1], step[2], step[3]
            if source != target:
                system.submit(transfer(source, target, amount))
        elif kind == "crash":
            if step[1] not in down:
                down.add(step[1])
                system.crash_site(step[1])
        elif kind == "recover":
            if step[1] in down:
                down.discard(step[1])
                system.recover_site(step[1])
        elif kind == "advance":
            system.run_for(step[1])
    for site in sorted(down):
        system.recover_site(site)
    system.run_for(60.0)
    return system


@given(schedules, st.integers(min_value=0, max_value=2**16))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_schedules_converge_to_serial_equivalence(schedule, seed):
    system = run_schedule(schedule, seed)

    # 1. Everything decided.
    assert not system.pending_handles()

    # 2. All uncertainty resolved, all bookkeeping collected.
    assert system.total_polyvalues() == 0
    assert system.outcome_bookkeeping_size() == 0
    for site in system.sites.values():
        assert site.runtime.locks.locked_items() == frozenset()
        assert not site.participant.blocked_transactions()

    # 3. Serial-replay equivalence.
    committed = sorted(
        (h for h in system.handles if h.status is TxnStatus.COMMITTED),
        key=lambda h: h.decided_at,
    )
    state = {item: INITIAL for item in ITEMS}
    for handle in committed:
        result = execute(handle.transaction.body, state)
        state.update(result.merged_writes(state))
    assert system.database_state() == state

    # 4. Transfers conserve; increments add exactly one each.
    total = sum(system.database_state().values())
    committed_incs = sum(
        1 for h in committed if h.transaction.label.startswith("inc")
    )
    assert total == len(ITEMS) * INITIAL + committed_incs
