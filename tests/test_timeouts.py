"""Unit tests for the resilience primitives in repro.txn.timeouts.

The estimator math follows RFC 6298 exactly; these tests pin the
numbers so a refactor cannot silently change protocol patience.  The
Patience tests cover the property the whole adaptive mode rests on:
fixed mode and unsampled peers behave bit-for-bit like the historical
constants, and Karn backoff (penalize) widens — never narrows — the
window after a timeout until a genuine sample arrives.
"""

import pytest

from repro.core.errors import SimulationError
from repro.txn.timeouts import (
    Patience,
    RetryPolicy,
    RttEstimator,
    TimeoutPolicy,
    deterministic_jitter_fraction,
)


class TestRttEstimator:
    def test_no_samples_no_rto(self):
        estimator = RttEstimator()
        assert estimator.rto() is None
        assert estimator.samples == 0

    def test_first_sample_initialises_like_tcp(self):
        estimator = RttEstimator()
        estimator.observe(0.1)
        assert estimator.srtt == pytest.approx(0.1)
        assert estimator.rttvar == pytest.approx(0.05)
        assert estimator.rto(k=4.0) == pytest.approx(0.1 + 4 * 0.05)

    def test_ewma_update(self):
        estimator = RttEstimator()
        estimator.observe(0.1)
        estimator.observe(0.2)
        # rttvar updates first with the OLD srtt: |0.2-0.1| = 0.1
        assert estimator.rttvar == pytest.approx(0.75 * 0.05 + 0.25 * 0.1)
        assert estimator.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)

    def test_converges_to_steady_rtt(self):
        estimator = RttEstimator()
        for _ in range(200):
            estimator.observe(0.04)
        assert estimator.srtt == pytest.approx(0.04)
        assert estimator.rttvar == pytest.approx(0.0, abs=1e-6)

    def test_negative_sample_rejected(self):
        estimator = RttEstimator()
        with pytest.raises(SimulationError):
            estimator.observe(-0.01)


class TestTimeoutPolicy:
    def test_default_is_fixed(self):
        assert TimeoutPolicy().mode == "fixed"
        assert not TimeoutPolicy().adaptive
        assert TimeoutPolicy(mode="adaptive").adaptive

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            TimeoutPolicy(mode="psychic")

    def test_bad_gains_rejected(self):
        with pytest.raises(SimulationError):
            TimeoutPolicy(alpha=0.0)
        with pytest.raises(SimulationError):
            TimeoutPolicy(beta=1.5)

    def test_bad_clamp_rejected(self):
        with pytest.raises(SimulationError):
            TimeoutPolicy(min_timeout=0.0)
        with pytest.raises(SimulationError):
            TimeoutPolicy(min_timeout=2.0, max_timeout=1.0)


class TestPatience:
    def test_fixed_mode_always_answers_fallback(self):
        patience = Patience(TimeoutPolicy(mode="fixed"))
        patience.observe("peer", 0.01)
        patience.penalize("peer")
        assert patience.timeout_for("peer", 0.5) == 0.5
        assert patience.timeout_over(["peer", "other"], 0.5) == 0.5

    def test_adaptive_unsampled_peer_falls_back(self):
        patience = Patience(TimeoutPolicy(mode="adaptive"))
        assert patience.timeout_for("stranger", 0.5) == 0.5

    def test_adaptive_sampled_peer_uses_rto(self):
        policy = TimeoutPolicy(mode="adaptive")
        patience = Patience(policy)
        patience.observe("peer", 0.1)
        expected = policy.grace + 0.1 + policy.k * 0.05
        assert patience.timeout_for("peer", 0.5) == pytest.approx(expected)

    def test_clamped_to_bounds(self):
        policy = TimeoutPolicy(mode="adaptive", min_timeout=0.2, max_timeout=1.0)
        patience = Patience(policy)
        patience.observe("fast", 0.0001)
        assert patience.timeout_for("fast", 0.5) == 0.2
        patience.observe("slow", 10.0)
        assert patience.timeout_for("slow", 0.5) == 1.0

    def test_timeout_over_takes_slowest_peer(self):
        policy = TimeoutPolicy(mode="adaptive")
        patience = Patience(policy)
        patience.observe("fast", 0.01)
        patience.observe("slow", 0.2)
        assert patience.timeout_over(["fast", "slow"], 0.5) == pytest.approx(
            patience.timeout_for("slow", 0.5)
        )

    def test_timeout_over_unsampled_mixed_in(self):
        # An unsampled peer contributes the fallback, which dominates a
        # fast sampled peer — early rounds behave like fixed mode.
        patience = Patience(TimeoutPolicy(mode="adaptive"))
        patience.observe("fast", 0.01)
        assert patience.timeout_over(["fast", "stranger"], 0.5) == 0.5


class TestKarnBackoff:
    def test_penalty_doubles_per_consecutive_timeout(self):
        patience = Patience(TimeoutPolicy(mode="adaptive", max_timeout=1000.0))
        patience.observe("peer", 0.1)
        base = patience.timeout_for("peer", 0.5)
        patience.penalize("peer")
        assert patience.timeout_for("peer", 0.5) == pytest.approx(2 * base)
        patience.penalize("peer")
        assert patience.timeout_for("peer", 0.5) == pytest.approx(4 * base)

    def test_penalty_capped(self):
        patience = Patience(TimeoutPolicy(mode="adaptive", max_timeout=1e9))
        patience.observe("peer", 0.1)
        base = patience.timeout_for("peer", 0.5)
        for _ in range(50):
            patience.penalize("peer")
        assert patience.timeout_for("peer", 0.5) == pytest.approx(
            base * (1 << Patience.MAX_PENALTY)
        )

    def test_sample_resets_penalty(self):
        policy = TimeoutPolicy(mode="adaptive", max_timeout=1000.0)
        patience = Patience(policy)
        patience.observe("peer", 0.1)
        patience.penalize("peer")
        patience.penalize("peer")
        patience.observe("peer", 0.1)
        # The new sample clears the 4x penalty; what remains is the pure
        # (re-estimated) RTO.
        estimator = patience.estimator("peer")
        expected = policy.grace + estimator.rto(policy.k)
        assert patience.timeout_for("peer", 0.5) == pytest.approx(expected)

    def test_penalty_still_clamped_by_max_timeout(self):
        policy = TimeoutPolicy(mode="adaptive", max_timeout=0.3)
        patience = Patience(policy)
        patience.observe("peer", 0.1)
        for _ in range(10):
            patience.penalize("peer")
        assert patience.timeout_for("peer", 0.5) == 0.3


class TestRetryPolicy:
    def test_defaults_validate(self):
        RetryPolicy()

    def test_bad_parameters_rejected(self):
        with pytest.raises(SimulationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(SimulationError):
            RetryPolicy(backoff_cap=0.0)
        with pytest.raises(SimulationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(SimulationError):
            RetryPolicy(suppression_threshold=0)

    def test_base_defaults_to_config_interval(self):
        assert RetryPolicy().base(1.0) == 1.0
        assert RetryPolicy(backoff_base=0.25).base(1.0) == 0.25

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(backoff_factor=2.0, backoff_cap=8.0, jitter=0.0)
        delays = [
            policy.delay(attempt, default_base=1.0) for attempt in range(1, 7)
        ]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_flat_policy_reproduces_historical_cadence(self):
        policy = RetryPolicy(
            backoff_factor=1.0, jitter=0.0, suppression_threshold=10**9
        )
        assert all(
            policy.delay(attempt, default_base=1.0) == 1.0
            for attempt in range(1, 10)
        )

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(jitter=0.1)
        first = policy.delay(2, default_base=1.0, key="T1->site-1")
        again = policy.delay(2, default_base=1.0, key="T1->site-1")
        other = policy.delay(2, default_base=1.0, key="T1->site-2")
        assert first == again
        assert first != other
        assert 2.0 <= first <= 2.2

    def test_invalid_attempt_rejected(self):
        with pytest.raises(SimulationError):
            RetryPolicy().delay(0, default_base=1.0)


class TestDeterministicJitter:
    def test_stable_and_in_range(self):
        values = {
            deterministic_jitter_fraction(f"key-{index}", attempt)
            for index in range(20)
            for attempt in range(1, 4)
        }
        assert all(0.0 <= value < 1.0 for value in values)
        assert len(values) > 40  # decorrelated across keys/attempts
        assert deterministic_jitter_fraction(
            "k", 1
        ) == deterministic_jitter_fraction("k", 1)
