"""Tests for protocol tracing (repro.txn.tracing)."""

import pytest

from repro.txn.system import DistributedSystem
from repro.txn.tracing import ProtocolTracer
from repro.txn.transaction import Transaction, TxnStatus

from tests.conftest import move, run_to_decision


def traced_system(seed=9):
    system = DistributedSystem.build(
        sites=3,
        items={"a": 10, "b": 20, "c": 30},
        seed=seed,
        jitter=0.0,
    )
    return system, ProtocolTracer(system)


class TestRecording:
    def test_commit_produces_expected_message_kinds(self):
        system, tracer = traced_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        kinds = tracer.message_kinds()
        # Two participants: reads, replies, stages, readies, completes,
        # and the outcome acks that garbage-collect the commit record.
        assert kinds["ReadRequest"] == 2
        assert kinds["ReadReply"] == 2
        assert kinds["StageRequest"] == 2
        assert kinds["Ready"] == 2
        assert kinds["Complete"] == 2
        assert kinds["OutcomeAck"] == 2

    def test_message_order_for_one_transaction(self):
        system, tracer = traced_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        delivered = [
            record.message_kind
            for record in tracer.for_txn(handle.txn)
            if record.event == "deliver"
        ]
        # Per recipient interleaving varies, but the phase order is
        # strict: all reads before all stages before all completes.
        assert delivered.index("StageRequest") > delivered.index("ReadReply")
        assert delivered.index("Complete") > delivered.index("Ready")

    def test_drops_recorded_during_crash(self):
        system, tracer = traced_system()
        system.submit(move("a", "b", 3))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(2.0)
        dropped = tracer.drops()
        assert dropped
        assert all(record.event == "drop:site-down" for record in dropped)

    def test_partition_drops_labelled(self):
        system, tracer = traced_system()
        system.network.partition("site-0", "site-1")
        system.submit(move("a", "b", 3))
        system.run_for(1.0)
        assert any(
            record.event == "drop:partition" for record in tracer.drops()
        )

    def test_for_txn_filters(self):
        system, tracer = traced_system()
        first = system.submit(move("a", "b", 1))
        run_to_decision(system, first)
        second = system.submit(move("b", "c", 1))
        run_to_decision(system, second)
        assert all(r.txn == first.txn for r in tracer.for_txn(first.txn))
        assert tracer.for_txn(first.txn)
        assert tracer.for_txn(second.txn)

    def test_clear(self):
        system, tracer = traced_system()
        handle = system.submit(move("a", "b", 1))
        run_to_decision(system, handle)
        tracer.clear()
        assert tracer.records == []

    def test_message_complexity_formula(self):
        # A committed transaction with p participants costs exactly 6p
        # protocol messages: p each of ReadRequest, ReadReply,
        # StageRequest, Ready, Complete, OutcomeAck.
        system, tracer = traced_system()
        two_party = system.submit(move("a", "b", 1))
        run_to_decision(system, two_party)
        system.run_for(1.0)
        protocol_messages = [
            record
            for record in tracer.records
            if record.event == "send" and record.txn == two_party.txn
        ]
        assert len(protocol_messages) == 6 * 2

        tracer.clear()

        def touch_all(ctx):
            for item in ("a", "b", "c"):
                ctx.write(item, ctx.read(item) + 1)

        three_party = system.submit(
            Transaction(body=touch_all, items=("a", "b", "c"))
        )
        run_to_decision(system, three_party)
        system.run_for(1.0)
        protocol_messages = [
            record
            for record in tracer.records
            if record.event == "send" and record.txn == three_party.txn
        ]
        assert len(protocol_messages) == 6 * 3


class TestRendering:
    def test_sequence_chart_contains_arrows_and_kinds(self):
        system, tracer = traced_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        chart = tracer.sequence_chart(handle.txn)
        assert "ReadRequest" in chart
        assert "Complete" in chart
        assert ">" in chart and "<" in chart
        assert "site-0" in chart and "site-1" in chart

    def test_sequence_chart_marks_drops(self):
        system, tracer = traced_system()
        system.submit(move("a", "b", 3))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(2.0)
        chart = tracer.sequence_chart()
        assert "X " in chart
        assert "site-down" in chart

    def test_empty_chart(self):
        system, tracer = traced_system()
        assert tracer.sequence_chart() == "(no traffic)"

    def test_timeline_lines(self):
        system, tracer = traced_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        timeline = tracer.timeline(handle.txn)
        assert "ReadRequest" in timeline
        assert handle.txn in timeline
        assert "ms" in timeline

    def test_describe_includes_stage_writes(self):
        system, tracer = traced_system()
        handle = system.submit(move("a", "b", 3))
        run_to_decision(system, handle)
        stage_lines = [
            record.describe()
            for record in tracer.records
            if record.message_kind == "StageRequest"
        ]
        assert any("writes=" in line for line in stage_lines)
