"""Unit tests for transaction specs and handles (repro.txn.transaction)."""

import pytest

from repro.core.errors import ProtocolError
from repro.txn.transaction import (
    Transaction,
    TransactionHandle,
    TxnStatus,
    coordinator_of,
    make_txn_id,
)


def noop(ctx):
    return None


class TestTransactionSpec:
    def test_declared_items_required(self):
        with pytest.raises(ProtocolError):
            Transaction(body=noop, items=())

    def test_duplicate_items_rejected(self):
        with pytest.raises(ProtocolError):
            Transaction(body=noop, items=("a", "a"))

    def test_label_defaults_empty(self):
        assert Transaction(body=noop, items=("a",)).label == ""


class TestTxnIds:
    def test_make_and_parse_roundtrip(self):
        txn = make_txn_id(17, "site-3")
        assert txn == "T17@site-3"
        assert coordinator_of(txn) == "site-3"

    def test_malformed_id_rejected(self):
        with pytest.raises(ProtocolError):
            coordinator_of("T17")
        with pytest.raises(ProtocolError):
            coordinator_of("T17@")


class TestHandleLifecycle:
    def make_handle(self):
        return TransactionHandle(
            txn="T1@s",
            transaction=Transaction(body=noop, items=("a",)),
            submitted_at=1.0,
        )

    def test_initial_state_pending(self):
        handle = self.make_handle()
        assert handle.status is TxnStatus.PENDING
        assert handle.latency is None

    def test_commit_records_outputs_and_latency(self):
        handle = self.make_handle()
        handle.mark_committed(1.5, {"ok": True})
        assert handle.status is TxnStatus.COMMITTED
        assert handle.outputs == {"ok": True}
        assert handle.latency == pytest.approx(0.5)

    def test_abort_records_reason(self):
        handle = self.make_handle()
        handle.mark_aborted(2.0, "lock conflict")
        assert handle.status is TxnStatus.ABORTED
        assert handle.abort_reason == "lock conflict"

    def test_redeciding_same_way_is_idempotent(self):
        handle = self.make_handle()
        handle.mark_committed(1.5, {})
        handle.mark_committed(1.6, {})  # no error
        assert handle.decided_at == 1.5

    def test_conflicting_decision_raises(self):
        handle = self.make_handle()
        handle.mark_committed(1.5, {})
        with pytest.raises(ProtocolError):
            handle.mark_aborted(1.6)

    def test_repr_mentions_status(self):
        handle = self.make_handle()
        assert "pending" in repr(handle)
