"""Tests for the §6 combination feature: outcome-query retries before
installing polyvalues (ProtocolConfig.wait_query_retries)."""

import pytest

from repro.core.polyvalue import is_polyvalue
from repro.txn.config import ProtocolConfig
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus

from tests.conftest import move, run_to_decision


def build(retries, seed=42, wait_timeout=0.3):
    return DistributedSystem.build(
        sites=3,
        items={f"item-{index}": 100 for index in range(4)},
        seed=seed,
        jitter=0.0,
        config=ProtocolConfig(
            wait_query_retries=retries, wait_timeout=wait_timeout
        ),
    )


def lose_complete_via_partition(system):
    """Commit succeeds at the coordinator but the complete message to the
    remote participant is lost to a brief partition."""
    handle = system.submit(move("item-0", "item-1", 30))
    system.run_for(0.041)  # both readies delivered at 40ms; decision made
    system.network.partition("site-0", "site-1")
    system.run_for(0.2)  # the complete to site-1 is dropped
    system.network.heal_all()
    return handle


class TestRetriesAvoidPolyvalues:
    def test_without_retries_blip_creates_polyvalue(self):
        system = build(retries=0)
        handle = lose_complete_via_partition(system)
        system.run_for(0.3)
        assert handle.status is TxnStatus.COMMITTED
        assert system.metrics.polyvalues_installed >= 1

    def test_with_retries_blip_resolves_cleanly(self):
        system = build(retries=3)
        handle = lose_complete_via_partition(system)
        system.run_for(2.0)
        assert handle.status is TxnStatus.COMMITTED
        # The retry query reached the recovered coordinator and the
        # staged update installed normally: no polyvalue ever existed.
        assert system.metrics.polyvalues_installed == 0
        assert system.read_item("item-1") == 130
        assert system.read_item("item-0") == 70

    def test_retry_resolution_uses_real_outcome(self):
        # Same blip, but the coordinator decided ABORT (partition cut
        # the ready instead): retries must discard, not install.
        system = build(retries=3)
        handle = system.submit(move("item-0", "item-1", 30))
        system.run_for(0.035)  # staged; ready about to fly
        system.network.partition("site-0", "site-1")
        system.run_for(0.5)  # coordinator times out -> abort (lost);
        # the participant's first retry (at ~0.33) is also lost
        system.network.heal_all()
        system.run_for(2.0)  # second retry gets through: "aborted"
        assert handle.status is TxnStatus.ABORTED
        assert system.metrics.polyvalues_installed == 0
        assert system.read_item("item-1") == 100

    def test_genuine_outage_still_installs_polyvalues(self):
        # Retries only help when the coordinator is reachable; a real
        # crash exhausts them and polyvalues appear (availability is
        # delayed by retries x wait_timeout but never lost).
        system = build(retries=2, wait_timeout=0.2)
        system.submit(move("item-0", "item-1", 30))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(0.3)
        # Still retrying: no polyvalue yet, item still locked.
        assert system.metrics.polyvalues_installed == 0
        system.run_for(1.0)
        # Retries exhausted: polyvalue installed, item available.
        value = system.read_item("item-1")
        assert is_polyvalue(value)
        assert not system.sites["site-1"].runtime.locks.is_locked("item-1")

    def test_retry_count_bounds_delay(self):
        # With R retries and timeout W, installation happens at about
        # (R+1) * W after ready.
        system = build(retries=4, wait_timeout=0.2)
        system.submit(move("item-0", "item-1", 30))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(0.85)  # 4 retries still in flight (first at 0.23)
        assert system.metrics.polyvalues_installed == 0
        system.run_for(0.5)
        assert system.metrics.polyvalues_installed >= 1

    def test_figure1_edges_still_valid_with_retries(self):
        system = build(retries=2, wait_timeout=0.2)
        system.submit(move("item-0", "item-1", 30))
        system.run_for(0.035)
        system.crash_site("site-0")
        system.run_for(3.0)
        system.recover_site("site-0")
        system.run_for(5.0)
        assert system.transitions.all_edges_valid()
        assert system.total_polyvalues() == 0
