"""Tests for the random-update workload generator (repro.workloads.generator)."""

import pytest

from repro.core.errors import SimulationError
from repro.txn.system import DistributedSystem
from repro.txn.transaction import TxnStatus
from repro.workloads.generator import (
    RandomUpdateWorkload,
    WorkloadConfig,
    make_item_ids,
    make_update_transaction,
)

from tests.conftest import run_to_decision


def small_system(items=12, seed=3):
    values = {item: 1 for item in make_item_ids(items)}
    return DistributedSystem.build(sites=3, items=values, seed=seed)


class TestHelpers:
    def test_make_item_ids_padded_and_sorted(self):
        ids = make_item_ids(11)
        assert ids[0] == "item-0000"
        assert ids == sorted(ids)

    def test_update_transaction_declares_all_items(self):
        txn = make_update_transaction(
            "a", ["b", "c"], include_previous=True, salt=1
        )
        assert set(txn.items) == {"a", "b", "c"}

    def test_update_transaction_dedupes_target_in_deps(self):
        txn = make_update_transaction(
            "a", ["a", "b"], include_previous=False, salt=1
        )
        assert list(txn.items).count("a") == 1

    def test_update_is_deterministic_function_of_reads(self):
        txn = make_update_transaction("a", ["b"], include_previous=True, salt=9)
        from repro.core.polytransaction import execute

        first = execute(txn.body, {"a": 5, "b": 7}).merged_writes({})
        second = execute(txn.body, {"a": 5, "b": 7}).merged_writes({})
        assert first == second

    def test_previous_value_inclusion_changes_result(self):
        with_previous = make_update_transaction(
            "a", ["b"], include_previous=True, salt=9
        )
        without = make_update_transaction(
            "a", ["b"], include_previous=False, salt=9
        )
        from repro.core.polytransaction import execute

        first = execute(with_previous.body, {"a": 5, "b": 7}).merged_writes({})
        second = execute(without.body, {"a": 5, "b": 7}).merged_writes({})
        assert first != second


class TestConfigValidation:
    def test_rate_must_be_positive(self):
        with pytest.raises(SimulationError):
            WorkloadConfig(update_rate=0)

    def test_independence_bounds(self):
        with pytest.raises(SimulationError):
            WorkloadConfig(update_rate=1, update_independence=1.5)

    def test_hot_spot_fields_must_pair(self):
        with pytest.raises(SimulationError):
            WorkloadConfig(update_rate=1, hot_fraction=0.1, hot_weight=0.0)


class TestDriver:
    def test_arrivals_submit_transactions(self):
        system = small_system()
        workload = RandomUpdateWorkload(
            system, WorkloadConfig(update_rate=20), seed=1
        )
        workload.start()
        system.run_for(2.0)
        workload.stop()
        assert len(workload.handles) == pytest.approx(40, abs=25)
        system.run_for(3.0)
        decided = [
            h for h in workload.handles if h.status is not TxnStatus.PENDING
        ]
        assert len(decided) == len(workload.handles)

    def test_stop_halts_arrivals(self):
        system = small_system()
        workload = RandomUpdateWorkload(
            system, WorkloadConfig(update_rate=20), seed=1
        )
        workload.start()
        system.run_for(1.0)
        workload.stop()
        count = len(workload.handles)
        system.run_for(2.0)
        assert len(workload.handles) == count

    def test_no_failures_leaves_database_certain(self):
        system = small_system()
        workload = RandomUpdateWorkload(
            system, WorkloadConfig(update_rate=10, dependency_mean=2), seed=2
        )
        workload.start()
        system.run_for(3.0)
        workload.stop()
        system.run_for(3.0)
        assert system.total_polyvalues() == 0

    def test_deterministic_given_seed(self):
        def run(seed):
            system = small_system(seed=seed)
            workload = RandomUpdateWorkload(
                system, WorkloadConfig(update_rate=10), seed=seed
            )
            workload.start()
            system.run_for(3.0)
            workload.stop()
            system.run_for(2.0)
            return system.database_state()

        assert run(5) == run(5)

    def test_hot_spot_concentrates_traffic(self):
        system = small_system(items=20)
        config = WorkloadConfig(
            update_rate=50, hot_fraction=0.1, hot_weight=0.8
        )
        workload = RandomUpdateWorkload(system, config, seed=4)
        targets = [workload._pick_item() for _ in range(500)]
        hot_items = set(make_item_ids(20)[:2])
        hot_hits = sum(1 for t in targets if t in hot_items)
        assert hot_hits > 250  # ~80% expected vs 10% uniform

    def test_empty_item_list_rejected(self):
        system = small_system()
        with pytest.raises(SimulationError):
            RandomUpdateWorkload(
                system, WorkloadConfig(update_rate=1), items=[]
            )
